#include "check/hybrid_diff.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/hybrid_pdes.h"
#include "sim/parallel.h"
#include "sim/random.h"

namespace esim::check {
namespace {

/// Schedules every flow whose source host `owner` maps to partition `p`
/// on `sim`, with completion wired into the digest.
void inject_flows(sim::Simulator& sim, const std::vector<FlowSpec>& flows,
                  const std::vector<tcp::Host*>& hosts,
                  const std::vector<std::uint32_t>& owner, std::uint32_t p,
                  StateDigest& digest) {
  for (const FlowSpec& f : flows) {
    if (owner[f.src] != p) continue;
    tcp::Host* host = hosts[f.src];
    sim.schedule_at(sim::SimTime::from_ns(f.start_ns), [host, f, &digest] {
      auto* conn = host->open_flow(f.dst, f.bytes, f.flow_id);
      const sim::SimTime start = host->sim().now();
      conn->on_complete = [host, f, start, &digest] {
        digest.on_flow_complete(f.flow_id, f.src, f.dst, f.bytes, start,
                                host->sim().now());
      };
    });
  }
}

}  // namespace

core::HybridConfig HybridScenario::hybrid_config(bool batching) const {
  core::HybridConfig cfg;
  cfg.net.spec.clusters = clusters;
  cfg.net.spec.tors_per_cluster = tors_per_cluster;
  cfg.net.spec.aggs_per_cluster = aggs_per_cluster;
  cfg.net.spec.hosts_per_tor = hosts_per_tor;
  cfg.net.spec.cores = cores;
  cfg.approx.sample_drops = sample_drops;
  cfg.approx.min_latency_s = min_latency_us * 1e-6;
  cfg.approx.max_port_backlog =
      sim::SimTime::from_ns(static_cast<std::int64_t>(max_port_backlog_us * 1e3));
  if (batching) {
    cfg.approx.batch_max = batch_max;
    cfg.approx.batch_window = sim::SimTime::from_ns(batch_window_ns);
  }
  if (adaptive_tiers) {
    cfg.approx.tier.mode = core::ClusterTierPolicy::Mode::Adaptive;
    cfg.approx.tier.fixed_tier = core::ClusterTier::Ml;  // initial tier
    cfg.approx.tier.min_dwell_windows = min_dwell_windows;
  } else {
    cfg.approx.tier.fixed_tier = fixed_tier;
  }
  return cfg;
}

/// FidelityConfig for the internal sink run_hybrid attaches when a
/// scenario demands adaptive tiers but the caller brought no sink:
/// congestion tracking only (no shadow sampling, no JSONL) with the
/// scenario's classification thresholds.
static telemetry::FidelityConfig granularity_fidelity_config(
    const HybridScenario& sc) {
  telemetry::FidelityConfig fcfg;
  fcfg.enabled = true;
  fcfg.sample_period = 0;  // keep congestion tracking, skip shadow cost
  fcfg.quiescent_util = sc.quiescent_util;
  fcfg.congested_util = sc.congested_util;
  fcfg.congested_drop_rate = sc.congested_drop_rate;
  fcfg.ewma_alpha = sc.classify_ewma_alpha;
  return fcfg;
}

approx::MicroModel HybridScenario::make_model(std::uint64_t seed_offset) const {
  approx::MicroModel::Config mcfg;
  mcfg.hidden = model_hidden;
  mcfg.layers = model_layers;
  mcfg.seed = model_seed + seed_offset;
  approx::MicroModel m{mcfg};
  // Seeded random trunk/head weights give feature-dependent predictions;
  // the bias pins the baseline drop rate, and the normalization places
  // latencies around latency_mean_us (with some below the configured
  // floor, exercising the min-latency clamp).
  m.drop_head().bias().at(0, 0) = drop_bias;
  m.set_latency_normalization(std::log(latency_mean_us), latency_std);
  m.recompile();  // the bias write above bypassed the compiled snapshot
  return m;
}

void HybridScenario::validate() const {
  if (clusters < 2) {
    throw std::invalid_argument("HybridScenario: need >= 2 clusters");
  }
  if (tors_per_cluster == 0 || aggs_per_cluster == 0 || hosts_per_tor == 0 ||
      cores == 0) {
    throw std::invalid_argument("HybridScenario: empty topology dimension");
  }
  if (latency_mean_us <= 0.0 || latency_std <= 0.0 || min_latency_us <= 0.0) {
    throw std::invalid_argument("HybridScenario: non-positive latency knob");
  }
  if (batch_max < 2 || batch_window_ns <= 0) {
    throw std::invalid_argument("HybridScenario: degenerate batch config");
  }
  if (static_cast<double>(batch_window_ns + lookahead_ns) >
      min_latency_us * 1e3) {
    throw std::invalid_argument(
        "HybridScenario: batch_window + lookahead exceeds min latency");
  }
  std::set<std::int64_t> starts;
  std::set<std::uint64_t> ids;
  for (const FlowSpec& f : flows) {
    if (f.src >= total_hosts() || f.dst >= total_hosts() || f.src == f.dst) {
      throw std::invalid_argument("HybridScenario: bad flow endpoints");
    }
    if (f.bytes == 0 || f.start_ns < 0 || f.start_ns >= duration_ns) {
      throw std::invalid_argument("HybridScenario: bad flow size/start");
    }
    if (!starts.insert(f.start_ns).second) {
      throw std::invalid_argument("HybridScenario: duplicate start time");
    }
    if (!ids.insert(f.flow_id).second) {
      throw std::invalid_argument("HybridScenario: duplicate flow id");
    }
  }
}

std::string HybridScenario::summary() const {
  std::ostringstream os;
  os << clusters << " clusters x " << tors_per_cluster * hosts_per_tor
     << " hosts, " << flows.size() << " flows, batch " << batch_max << "/"
     << batch_window_ns << "ns, minlat " << min_latency_us << "us, bias "
     << drop_bias << ", " << duration_ns / 1'000'000.0 << "ms";
  return os.str();
}

HybridScenario random_hybrid_scenario(std::uint64_t scenario_seed) {
  // Seeds feed the engine (component RNG forks); keep them odd and
  // decorrelated from the scenario-shape draws.
  sim::Rng rng{scenario_seed * 2 + 1};
  HybridScenario sc;
  sc.seed = scenario_seed + 11;
  sc.clusters = 3 + static_cast<std::uint32_t>(rng.uniform_int(2));
  sc.cores = 2;
  sc.model_seed = rng.uniform_int(1'000) + 1;
  // Mostly gentle drop baselines (sampled rates ~5-20%); one scenario in
  // four sits near the threshold so p > 0.5 drops fire deterministically
  // in the cross-engine comparison too.
  sc.drop_bias = rng.uniform_int(4) == 0 ? 0.2 : -3.0 + rng.uniform() * 1.5;
  sc.latency_mean_us = 5.0 + rng.uniform() * 5.0;
  sc.latency_std = 0.2 + rng.uniform() * 0.3;
  sc.min_latency_us = 4.0 + rng.uniform() * 2.0;
  sc.max_port_backlog_us = 20.0 + rng.uniform() * 20.0;
  sc.lookahead_ns = 1'000;
  const std::size_t batch_choices[] = {4, 8, 16};
  sc.batch_max = batch_choices[rng.uniform_int(3)];
  const std::int64_t max_window =
      static_cast<std::int64_t>(sc.min_latency_us * 1e3) - sc.lookahead_ns;
  sc.batch_window_ns =
      1'000 + static_cast<std::int64_t>(rng.uniform_int(
                  static_cast<std::uint64_t>(max_window - 1'000)));
  sc.duration_ns = 2'000'000 + static_cast<std::int64_t>(
                                   rng.uniform_int(1'000'000));

  const std::uint32_t hosts = sc.total_hosts();
  const std::uint64_t n_flows = 6 + rng.uniform_int(9);
  for (std::uint64_t k = 0; k < n_flows; ++k) {
    FlowSpec f;
    f.src = static_cast<net::HostId>(rng.uniform_int(hosts));
    do {
      f.dst = static_cast<net::HostId>(rng.uniform_int(hosts));
    } while (f.dst == f.src);
    f.bytes = (4 + rng.uniform_int(40)) * 1'400;
    // Strictly increasing starts: spacing exceeds the jitter range, so
    // start times are globally unique by construction.
    f.start_ns = 10'000 + static_cast<std::int64_t>(k) * 3'000 +
                 static_cast<std::int64_t>(rng.uniform_int(2'000));
    f.flow_id = k + 1;
    sc.flows.push_back(f);
  }
  sc.validate();
  return sc;
}

HybridScenario random_granularity_scenario(std::uint64_t scenario_seed) {
  sim::Rng rng{scenario_seed * 2 + 1};
  HybridScenario sc;
  sc.seed = scenario_seed + 17;
  sc.clusters = 3 + static_cast<std::uint32_t>(rng.uniform_int(2));
  sc.cores = 2;
  sc.model_seed = rng.uniform_int(1'000) + 1;
  sc.drop_bias = -3.0 + rng.uniform() * 1.0;
  sc.latency_mean_us = 5.0 + rng.uniform() * 3.0;
  sc.latency_std = 0.2 + rng.uniform() * 0.2;
  sc.min_latency_us = 4.0 + rng.uniform() * 2.0;
  sc.max_port_backlog_us = 25.0 + rng.uniform() * 15.0;
  sc.lookahead_ns = 1'000;
  sc.batch_max = 8;
  sc.batch_window_ns =
      1'500 + static_cast<std::int64_t>(rng.uniform_int(1'000));

  sc.adaptive_tiers = true;
  sc.min_dwell_windows = 2 + static_cast<std::uint32_t>(rng.uniform_int(2));
  // Classification thresholds sized to this corpus: the aggregate
  // boundary capacity of a cluster here is ~100 Gbps while a handful of
  // ramping TCP flows offer a few hundred Mbps per 100 us window, so the
  // FidelityConfig defaults (2% / 50%) would classify everything as
  // quiescent forever. A fast EWMA makes the silence demote and the
  // burst promote within a few windows.
  sc.quiescent_util = 1e-4;
  sc.congested_util = 1.5e-3 + rng.uniform() * 1.5e-3;
  sc.congested_drop_rate = 0.5;  // classification is utilization-driven
  sc.classify_ewma_alpha = 0.6;
  sc.duration_ns =
      4'000'000 + static_cast<std::int64_t>(rng.uniform_int(1'000'000));

  // Quiescent-heavy shape: sparse early cross-cluster flows, a long
  // silence (the demotion trigger), one incast burst into an
  // approximated cluster (the promotion trigger), then a quiet tail.
  const std::uint32_t hosts = sc.total_hosts();
  const std::uint32_t hosts_per_cluster =
      sc.tors_per_cluster * sc.hosts_per_tor;
  std::uint64_t flow_id = 1;
  std::int64_t t = 10'000;
  const std::uint64_t early = 3 + rng.uniform_int(4);
  for (std::uint64_t k = 0; k < early; ++k) {
    FlowSpec f;
    f.src = static_cast<net::HostId>(rng.uniform_int(hosts));
    do {
      f.dst = static_cast<net::HostId>(rng.uniform_int(hosts));
    } while (f.dst == f.src);
    f.bytes = (6 + rng.uniform_int(16)) * 1'400;
    f.start_ns = t;
    t += 60'000 + static_cast<std::int64_t>(rng.uniform_int(50'000));
    f.flow_id = flow_id++;
    sc.flows.push_back(f);
  }
  // Silence, then the burst: fan-in to hosts of one approximated
  // cluster (index >= 1; cluster 0 stays full-fidelity).
  const std::uint32_t target =
      1 + static_cast<std::uint32_t>(rng.uniform_int(sc.clusters - 1));
  std::int64_t burst_t = std::max<std::int64_t>(
      t + 400'000, 2'400'000 + static_cast<std::int64_t>(
                                   rng.uniform_int(200'000)));
  const std::uint64_t burst = 8 + rng.uniform_int(7);
  for (std::uint64_t k = 0; k < burst; ++k) {
    FlowSpec f;
    f.dst = static_cast<net::HostId>(target * hosts_per_cluster +
                                     rng.uniform_int(hosts_per_cluster));
    do {
      f.src = static_cast<net::HostId>(rng.uniform_int(hosts));
    } while (f.src == f.dst);
    f.bytes = (20 + rng.uniform_int(30)) * 1'400;
    f.start_ns = burst_t;
    burst_t += 2'000 + static_cast<std::int64_t>(rng.uniform_int(1'500));
    f.flow_id = flow_id++;
    sc.flows.push_back(f);
  }
  sc.validate();
  return sc;
}

Digest run_hybrid(const HybridScenario& sc, std::uint32_t partitions,
                  bool batching, telemetry::FidelitySink* fidelity,
                  TierTraces* traces) {
  sc.validate();
  const approx::MicroModel ingress = sc.make_model(0);
  const approx::MicroModel egress = sc.make_model(7);
  const auto end = sim::SimTime::from_ns(sc.duration_ns);
  StateDigest digest;
  // Divergence localization hook: ESIM_CAPTURE=<file> dumps every
  // per-link packet record after the run (set it around two run_hybrid
  // calls and diff the files to find the first divergent record).
  const char* cap_file = std::getenv("ESIM_CAPTURE");
  if (cap_file != nullptr) digest.enable_capture();
  const auto dump_capture = [&] {
    if (cap_file == nullptr) return;
    std::ofstream out{cap_file};
    for (const auto& [link, recs] : digest.captured()) {
      for (const auto& r : recs) out << link << " | " << r.to_string() << "\n";
    }
  };

  // The adaptive controller needs its congestion signal: attach an
  // internal tracking-only sink when the caller brought none.
  std::unique_ptr<telemetry::FidelitySink> internal_sink;
  if (sc.adaptive_tiers && fidelity == nullptr) {
    internal_sink = std::make_unique<telemetry::FidelitySink>(
        granularity_fidelity_config(sc));
    fidelity = internal_sink.get();
  }

  core::HybridConfig cfg_h = sc.hybrid_config(batching);
  cfg_h.approx.fidelity = fidelity;
  const auto finalize_probes =
      [&](const std::vector<core::ApproxCluster*>& clusters) {
        for (auto* c : clusters) {
          if (c != nullptr) {
            c->flush_batch();
            c->finalize_fidelity();
            // Fold the transition trace into the engine-invariant tier
            // lane (and export it for element-wise comparison).
            for (const core::TierTransition& t : c->tier_trace()) {
              digest.on_tier_transition(c->cluster_id(), t.t_ns,
                                        static_cast<std::uint8_t>(t.from),
                                        static_cast<std::uint8_t>(t.to));
            }
            if (traces != nullptr) {
              (*traces)[c->cluster_id()] = c->tier_trace();
            }
          }
        }
      };

  if (partitions == 0) {
    sim::Simulator sim{sc.seed};
    auto net = core::build_hybrid_network(sim, cfg_h, ingress, egress);
    digest.attach(sim);
    const std::vector<std::uint32_t> owner(sc.total_hosts(), 0);
    inject_flows(sim, sc.flows, net.hosts, owner, 0, digest);
    sim.run_until(end);
    finalize_probes(net.clusters);
    dump_capture();
    return digest.finalize();
  }

  sim::ParallelEngine::Config cfg;
  cfg.num_partitions = partitions;
  cfg.lookahead = sim::SimTime::from_ns(sc.lookahead_ns);
  cfg.seed = sc.seed;
  sim::ParallelEngine engine{cfg};
  auto out = core::build_hybrid_network_partitioned(engine, cfg_h, ingress,
                                                    egress);
  digest.attach(engine);
  for (std::uint32_t p = 0; p < engine.num_partitions(); ++p) {
    inject_flows(engine.partition(p).sim(), sc.flows, out.net.hosts,
                 out.partition_of_host, p, digest);
  }
  engine.run_until(end);
  finalize_probes(out.net.clusters);
  dump_capture();
  return digest.finalize();
}

std::string check_hybrid(const HybridScenario& sc,
                         const std::vector<std::uint32_t>& partitions) {
  std::ostringstream os;

  // A. RNG draw-order contract: same engine, batching on vs off, drops
  // sampled from the cluster's private stream. Creation order (and so
  // every forked stream) is identical across the two runs, so any
  // divergence is a real draw-order or outcome-replay bug.
  HybridScenario sampled = sc;
  sampled.sample_drops = true;
  const Digest seq_off = run_hybrid(sampled, 0, /*batching=*/false);
  const Digest seq_on = run_hybrid(sampled, 0, /*batching=*/true);
  if (!seq_off.engine_invariant_equal(seq_on)) {
    os << "sequential batching off vs on DIVERGED (sampled drops)\n"
       << "  off: " << seq_off.to_string() << "\n"
       << "  on:  " << seq_on.to_string();
    return os.str();
  }

  // B. Engine equivalence with coalescing active on both sides. Threshold
  // drops only: sequential and PDES builds fork component RNGs from
  // different roots, so sampled draws differ by construction, not by bug.
  HybridScenario threshold = sc;
  threshold.sample_drops = false;
  const Digest seq = run_hybrid(threshold, 0, /*batching=*/true);
  for (const std::uint32_t p : partitions) {
    const Digest pdes = run_hybrid(threshold, p, /*batching=*/true);
    if (!seq.engine_invariant_equal(pdes)) {
      os << "sequential vs pdes(" << p
         << ") DIVERGED with batching active (threshold drops)\n"
         << "  sequential: " << seq.to_string() << "\n"
         << "  pdes(" << p << "): " << pdes.to_string();
      return os.str();
    }
  }
  return {};
}

std::string check_fidelity(const HybridScenario& sc,
                           const std::vector<std::uint32_t>& partitions,
                           std::uint64_t* rows_out,
                           std::uint64_t* shadow_out) {
  // Sampled drops everywhere: each comparison pairs two runs of ONE
  // engine config, so the RNG forks coincide and a divergence can only
  // come from the observatory touching simulation state.
  HybridScenario sampled = sc;
  sampled.sample_drops = true;

  telemetry::FidelityConfig fcfg;
  fcfg.enabled = true;
  fcfg.sample_period = 16;  // dense enough that small scenarios shadow

  std::uint64_t rows = 0;
  std::uint64_t shadow = 0;
  const auto compare = [&](std::uint32_t p,
                           bool batching) -> std::string {
    const Digest off = run_hybrid(sampled, p, batching);
    telemetry::FidelitySink sink{fcfg};
    const Digest on = run_hybrid(sampled, p, batching, &sink);
    rows += sink.rows_appended();
    for (const auto& s : sink.summaries()) shadow += s.shadow_samples;
    if (off == on) return {};
    std::ostringstream os;
    os << (p == 0 ? std::string{"sequential"}
                  : "pdes(" + std::to_string(p) + ")")
       << (batching ? " batched" : " unbatched")
       << ": fidelity off vs on DIVERGED\n"
       << "  off: " << off.to_string() << "\n"
       << "  on:  " << on.to_string();
    return os.str();
  };

  if (auto err = compare(0, /*batching=*/false); !err.empty()) return err;
  if (auto err = compare(0, /*batching=*/true); !err.empty()) return err;
  for (const std::uint32_t p : partitions) {
    if (auto err = compare(p, /*batching=*/true); !err.empty()) return err;
  }
  if (rows_out != nullptr) *rows_out += rows;
  if (shadow_out != nullptr) *shadow_out += shadow;
  return {};
}

namespace {

std::string describe_traces(const TierTraces& want, const TierTraces& got) {
  std::ostringstream os;
  const auto dump = [&os](const char* tag, const TierTraces& t) {
    os << "  " << tag << ":";
    for (const auto& [cluster, trace] : t) {
      os << " c" << cluster << "=[";
      for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) os << " ";
        os << trace[i].t_ns << "ns:" << core::to_string(trace[i].from)
           << ">" << core::to_string(trace[i].to);
      }
      os << "]";
    }
    os << "\n";
  };
  dump("want", want);
  dump("got ", got);
  return os.str();
}

}  // namespace

std::string check_granularity(const HybridScenario& sc,
                              const std::vector<std::uint32_t>& partitions,
                              std::uint64_t* transitions_out) {
  std::ostringstream os;
  HybridScenario adaptive = sc;
  adaptive.adaptive_tiers = true;

  // A. Draw-order contract with the controller in the loop: batching off
  // vs on, one engine, sampled drops. Every tier extracts features and
  // consumes the drop draw at admission, so the RNG cadence — and
  // therefore every outcome — must not depend on coalescing.
  HybridScenario sampled = adaptive;
  sampled.sample_drops = true;
  TierTraces tr_off;
  TierTraces tr_on;
  const Digest seq_off =
      run_hybrid(sampled, 0, /*batching=*/false, nullptr, &tr_off);
  const Digest seq_on =
      run_hybrid(sampled, 0, /*batching=*/true, nullptr, &tr_on);
  if (!seq_off.engine_invariant_equal(seq_on)) {
    os << "adaptive sequential batching off vs on DIVERGED (sampled drops)\n"
       << "  off: " << seq_off.to_string() << "\n"
       << "  on:  " << seq_on.to_string();
    return os.str();
  }
  if (tr_off != tr_on) {
    os << "adaptive sequential batching off vs on: tier-transition traces "
          "DIVERGED\n"
       << describe_traces(tr_off, tr_on);
    return os.str();
  }

  // B. Engine equivalence with the controller on: sequential vs PDES,
  // threshold drops (cross-engine RNG forks differ by construction),
  // batching active. The digest tier lane catches divergence, but the
  // element-wise trace comparison localizes it to a cluster and a
  // virtual time.
  HybridScenario threshold = adaptive;
  threshold.sample_drops = false;
  TierTraces tr_seq;
  const Digest seq =
      run_hybrid(threshold, 0, /*batching=*/true, nullptr, &tr_seq);
  if (transitions_out != nullptr) *transitions_out += seq.transitions;
  for (const std::uint32_t p : partitions) {
    TierTraces tr_p;
    const Digest pdes =
        run_hybrid(threshold, p, /*batching=*/true, nullptr, &tr_p);
    if (!seq.engine_invariant_equal(pdes)) {
      os << "adaptive sequential vs pdes(" << p
         << ") DIVERGED (threshold drops)\n"
         << "  sequential: " << seq.to_string() << "\n"
         << "  pdes(" << p << "): " << pdes.to_string();
      return os.str();
    }
    if (tr_seq != tr_p) {
      os << "adaptive sequential vs pdes(" << p
         << "): tier-transition traces DIVERGED\n"
         << describe_traces(tr_seq, tr_p);
      return os.str();
    }
  }
  return {};
}

}  // namespace esim::check
