// Streaming state digests: the executable form of the determinism
// contract (DESIGN.md §9).
//
// A StateDigest observes one simulation run — sequential, PDES, or hybrid
// PDES — and reduces everything the determinism contract promises to four
// 64-bit lanes:
//
//   * order lane   — order-SENSITIVE chain over the engine's event pop
//                    stream (time + FES tie-break seq), one chain per
//                    partition, combined commutatively keyed by partition
//                    index. Comparable only between runs of the *same*
//                    engine configuration (it fingerprints scheduling, not
//                    network behaviour).
//   * packet lane  — per-link order-sensitive chains over every packet
//                    that finished serializing (id, header, ECN, arrival
//                    time) or was queue-dropped, combined commutatively
//                    across links keyed by link name. Engine-INVARIANT:
//                    per-link packet streams are totally ordered by
//                    virtual time regardless of how partitions interleave
//                    globally.
//   * flow lane    — commutative hash over per-flow completion records
//                    (flow id, endpoints, bytes, start, FCT). Engine-
//                    invariant.
//   * final lane   — canonical-order (sorted by component name) chain over
//                    end-of-run link/switch/host counters and residual
//                    queue state. Engine-invariant.
//
// Deliberately EXCLUDED from every lane: wall-clock time, telemetry
// state, PDES sync-round/overhead accounting, and RNG draws — none of
// them are part of the behavioural contract between engines.
//
// Hookup follows the telemetry null-pointer pattern: a run with no digest
// attached pays one branch per event and nothing per packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace esim::check {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Order-sensitive streaming 64-bit hash (FNV-style multiply + mix).
class Hash64 {
 public:
  void absorb(std::uint64_t v) {
    h_ = mix64(h_ * 0x100000001B3ULL ^ v);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// The reduced fingerprint of one run.
struct Digest {
  std::uint64_t order_lane = 0;
  std::uint64_t packet_lane = 0;
  std::uint64_t flow_lane = 0;
  std::uint64_t final_lane = 0;
  /// Tier-transition lane: per-cluster order-sensitive chains over the
  /// GranularityController's executed transitions (virtual time, from,
  /// to), combined commutatively keyed by cluster. Engine-INVARIANT:
  /// transitions fire at macro-window boundaries inside one partition,
  /// from inputs the other invariant lanes already pin down. Zero when
  /// no adaptive controller ran.
  std::uint64_t tier_lane = 0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  std::uint64_t flows = 0;
  std::uint64_t transitions = 0;  ///< tier transitions folded in

  /// Full bitwise equality — meaningful only between runs of the same
  /// engine configuration (same kind, same partition count).
  bool operator==(const Digest&) const = default;

  /// Equality restricted to the engine-invariant lanes, the relation that
  /// must hold between sequential, PDES(1/2/4), and partitioned-hybrid
  /// runs of one scenario. Event counts differ across engines (each
  /// partition executes its own injection/bookkeeping events), so only
  /// behavioural lanes and packet/flow totals participate.
  bool engine_invariant_equal(const Digest& o) const {
    return packet_lane == o.packet_lane && flow_lane == o.flow_lane &&
           final_lane == o.final_lane && tier_lane == o.tier_lane &&
           packets == o.packets && drops == o.drops && flows == o.flows &&
           transitions == o.transitions;
  }

  /// "order=… packet=… flow=… final=… (events=… packets=… drops=… flows=…)"
  std::string to_string() const;
};

/// One observed packet record, as absorbed into the packet lane. Kept
/// only when record capture is on (divergence localization).
struct PacketRecord {
  std::int64_t time_ns = 0;  ///< arrival time (transmit) or drop time
  std::uint64_t packet_id = 0;
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack_seq = 0;
  std::uint32_t payload = 0;
  std::uint8_t flags = 0;  ///< TcpFlag bits | ecn<<3 | ece<<4
  bool dropped = false;

  bool operator==(const PacketRecord&) const = default;

  std::uint64_t hash() const;
  std::string to_string() const;
};

/// Builds the PacketRecord a LinkProbe would absorb for `pkt` observed at
/// `time_ns` (arrival time for transmits, drop time for drops). Public so
/// the phase-memoization recorder (src/memo) can log byte-identical
/// records from wrapped link observers.
PacketRecord make_packet_record(const net::Packet& pkt, std::int64_t time_ns,
                                bool dropped);

/// The final lane's component walk as a standalone fingerprint: counters
/// and residual queue state of every Link/Switch/Host in `sims`, absorbed
/// in canonical (name-sorted) order. Equal fingerprints mean equal
/// end-of-run network state regardless of how it was reached — the memo
/// layer's cheap equivalence check when no digest is attached.
std::uint64_t final_state_fingerprint(
    const std::vector<const sim::Simulator*>& sims);

/// Streaming observer wired into one run. Attach engines and links before
/// the run, feed flow completions during it, call finalize() after it.
/// Not copyable; must outlive the run it observes.
class StateDigest {
 public:
  StateDigest() = default;
  StateDigest(const StateDigest&) = delete;
  StateDigest& operator=(const StateDigest&) = delete;

  /// Keep per-link PacketRecord logs for divergence localization.
  /// Must be called before observe_links. Capture stops silently once
  /// `max_records` records have been kept across all links (the digest
  /// lanes keep absorbing regardless).
  void enable_capture(std::size_t max_records = 1 << 20);

  /// Hooks the event pop stream of a sequential engine (partition key 0).
  void attach(sim::Simulator& sim);

  /// Hooks every partition of a PDES engine (partition key = index) and
  /// observes all links already built inside the partitions.
  void attach(sim::ParallelEngine& engine);

  /// Installs probes on every Link component currently registered in
  /// `sim` (claims the links' on_transmit / on_drop observer slots) and
  /// remembers the simulator for final-state collection.
  void observe_links(sim::Simulator& sim);

  /// Thread-safe (PDES completions land on partition threads): absorbs a
  /// flow completion record into the flow lane.
  void on_flow_complete(std::uint64_t flow_id, std::uint32_t src,
                        std::uint32_t dst, std::uint64_t bytes,
                        sim::SimTime start, sim::SimTime end);

  /// Absorbs one executed tier transition of cluster `cluster` into the
  /// tier lane (chain per cluster, order-sensitive within the cluster).
  /// Call in each cluster's virtual-time order — the natural order of
  /// ApproxCluster::tier_trace(), folded in after the run stops. NOT
  /// thread-safe (post-run single-threaded fold).
  void on_tier_transition(std::uint32_t cluster, std::int64_t t_ns,
                          std::uint8_t from, std::uint8_t to);

  /// Reduces everything observed to a Digest. Walks the attached
  /// simulators' components in canonical (name-sorted) order for the
  /// final lane, so the result is independent of partition placement.
  /// Call only after the run has fully stopped (joins worker threads).
  Digest finalize() const;

  /// Captured per-link packet logs (empty unless enable_capture). Keyed
  /// by link name; each vector is in that link's observation order.
  std::map<std::string, std::vector<PacketRecord>> captured() const;

  // --- memoized-phase replay (src/memo) --------------------------------
  //
  // A verified cache hit fast-forwards the engines past a phase without
  // executing it; these entry points let the replayer feed the digest the
  // exact observations the live phase would have produced. Indices are
  // attachment order: event lane i is the i-th attach()ed simulator
  // (partition), probe i the i-th link claimed by observe_links — both
  // deterministic given a deterministic build order.

  /// Number of attached event lanes (partitions).
  std::size_t num_event_lanes() const { return lanes_.size(); }

  /// Number of claimed link probes.
  std::size_t num_probes() const { return probes_.size(); }

  /// The link behind probe `i` (for replayer index mapping).
  net::Link* probe_link(std::size_t i) const { return probes_.at(i)->link; }

  /// Absorbs one replayed event pop into lane `lane` — identical to the
  /// live PopObserver path.
  void replay_event_pop(std::size_t lane, sim::SimTime time,
                        std::uint64_t seq) {
    lanes_.at(lane)->on_event_pop(time, seq);
  }

  /// Absorbs one replayed packet record into probe `probe` — identical to
  /// the live on_transmit/on_drop path, including capture. Records are
  /// injected directly (not via the link observers) because drop records
  /// timestamp with the link's *current* clock, which during replay sits
  /// at the phase boundary, not the original drop time.
  void replay_link_record(std::size_t probe, const PacketRecord& r);

 private:
  // Per-partition order-lane observer.
  class EventLane : public sim::PopObserver {
   public:
    explicit EventLane(std::uint32_t key) : key_{key} {}
    void on_event_pop(sim::SimTime time, std::uint64_t seq) override {
      chain_.absorb(static_cast<std::uint64_t>(time.ns()));
      chain_.absorb(seq);
      ++events_;
    }
    std::uint32_t key() const { return key_; }
    std::uint64_t value() const { return chain_.value(); }
    std::uint64_t events() const { return events_; }

   private:
    std::uint32_t key_;
    Hash64 chain_;
    std::uint64_t events_ = 0;
  };

  // Per-link packet-lane probe; owns the link's observer slots.
  struct LinkProbe {
    net::Link* link = nullptr;
    Hash64 chain;
    std::uint64_t packets = 0;
    std::uint64_t drops = 0;
    std::vector<PacketRecord> capture;

    void record(const PacketRecord& r, bool keep, std::size_t max_records,
                std::atomic<std::size_t>& kept_total);
  };

  std::vector<sim::Simulator*> sims_;
  std::vector<std::unique_ptr<EventLane>> lanes_;
  std::vector<std::unique_ptr<LinkProbe>> probes_;
  std::map<std::uint32_t, Hash64> tier_chains_;  // keyed by cluster
  std::uint64_t transitions_ = 0;
  bool capture_ = false;
  std::size_t max_records_ = 0;
  std::atomic<std::size_t> captured_total_{0};
  std::atomic<std::uint64_t> flow_lane_{0};
  std::atomic<std::uint64_t> flows_{0};
};

}  // namespace esim::check
