// Differential execution: one scenario, several engines, digest compare,
// and first-divergence localization.
//
// The runner executes a Scenario under any EngineSpec (sequential
// Simulator, or PDES with N partitions), wiring a StateDigest into the
// engine, injecting the scenario's flow list, and reducing the run to a
// Digest. diff() compares two engines; on mismatch it bisects over the
// virtual-time horizon to the earliest end time at which the digests
// already differ, then reruns both sides with record capture to name the
// first divergent per-link packet event with context.
//
// Comparison relation:
//   * different engine configs  -> Digest::engine_invariant_equal
//     (packet/flow/final lanes; pop order is engine-specific)
//   * identical engine configs  -> full Digest equality, pop order
//     included (rerun determinism).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/digest.h"
#include "check/scenario.h"
#include "core/partitioner.h"
#include "sim/parallel.h"
#include "sim/time.h"

namespace esim::check {

/// Which engine to run a scenario under.
struct EngineSpec {
  /// 0 = sequential Simulator; >= 1 = ParallelEngine with this many
  /// partitions.
  std::uint32_t partitions = 0;
  /// Injected ordering bug: invert the FES same-time tie-break in every
  /// engine/partition of this run (see EventQueue::debug_set_invert_
  /// tiebreak). Used to prove the harness catches ordering regressions.
  bool invert_tiebreak = false;

  bool operator==(const EngineSpec&) const = default;

  std::string label() const;
};

/// Everything one engine run produced.
struct RunOutcome {
  Digest digest;
  std::uint64_t flows_completed = 0;
  /// Captured per-link packet logs (only when the runner asked for them).
  std::map<std::string, std::vector<PacketRecord>> records;
};

/// The first observable difference between two runs, localized to one
/// link's packet stream.
struct FirstDivergence {
  bool found = false;
  std::string link;        ///< link whose streams diverge earliest
  std::size_t index = 0;   ///< record index within that link's stream
  std::int64_t time_ns = 0;
  std::string base_record;   ///< "<end of stream>" when one side is short
  std::string other_record;
  std::vector<std::string> context;  ///< records preceding the divergence

  std::string to_string() const;
};

/// Result of one differential comparison.
struct DiffReport {
  bool equivalent = false;
  bool full_compare = false;  ///< identical specs: order lane included
  EngineSpec base;
  EngineSpec other;
  Digest base_digest;
  Digest other_digest;
  /// Bisected earliest horizon (ns) at which digests already differ; 0
  /// when equivalent or bisection disabled.
  std::int64_t divergence_window_ns = 0;
  FirstDivergence first;

  std::string to_string() const;
};

/// Executes scenarios under engines and compares digests.
class DiffRunner {
 public:
  struct Options {
    /// PDES conservative lookahead; must be <= the 1us link propagation.
    sim::SimTime lookahead = sim::SimTime::from_us(1);
    /// PDES window mode. Defaults to per-pair so the gate exercises the
    /// scale-out path (per-pair lookahead + SPSC drains) by default.
    sim::ParallelEngine::WindowMode window_mode =
        sim::ParallelEngine::WindowMode::per_pair;
    /// Switch placement for partitioned builds.
    core::PlacementPolicy placement = core::PlacementPolicy::graph_cut;
    /// Bisect + capture on mismatch (diff only).
    bool localize = true;
    /// Bisection stops when the window is this tight.
    std::int64_t bisect_resolution_ns = 1000;
    /// Record-capture cap during localization reruns.
    std::size_t max_capture = 1 << 20;
  };

  DiffRunner() = default;
  explicit DiffRunner(const Options& options) : options_{options} {}

  /// Runs `scenario` under `engine` until `end` (<= scenario duration),
  /// returning the digest (and captured records when `capture`).
  RunOutcome run(const Scenario& scenario, const EngineSpec& engine,
                 sim::SimTime end, bool capture = false) const;

  /// Full-duration run.
  RunOutcome run(const Scenario& scenario, const EngineSpec& engine) const {
    return run(scenario, engine, sim::SimTime::from_ns(scenario.duration_ns));
  }

  /// Compares `base` and `other` on `scenario`; localizes on mismatch.
  DiffReport diff(const Scenario& scenario, const EngineSpec& base,
                  const EngineSpec& other) const;

  /// The standing gate: sequential vs PDES at each partition count, plus
  /// a rerun-determinism check of the widest PDES config against itself.
  /// Returns one report per comparison.
  std::vector<DiffReport> check_all(
      const Scenario& scenario,
      const std::vector<std::uint32_t>& partition_counts,
      bool inject_tiebreak_bug = false) const;

 private:
  Options options_;
};

}  // namespace esim::check
