#include "check/scenario.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace esim::check {
namespace {

constexpr const char* kHeader = "# esim_diffcheck scenario v1";

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: bad value for " + key + ": '" +
                                value + "'");
  }
}

}  // namespace

const char* tcp_variant_name(TcpVariant v) {
  switch (v) {
    case TcpVariant::NewReno: return "newreno";
    case TcpVariant::DelayedAck: return "delayed_ack";
    case TcpVariant::Dctcp: return "dctcp";
  }
  return "?";
}

net::ClosSpec Scenario::clos() const {
  net::ClosSpec spec;
  spec.clusters = 1;
  spec.tors_per_cluster = tors;
  spec.aggs_per_cluster = spines;
  spec.hosts_per_tor = hosts_per_tor;
  spec.cores = 0;
  return spec;
}

core::NetworkConfig Scenario::network_config() const {
  core::NetworkConfig cfg;
  cfg.spec = clos();
  cfg.fabric_link.queue_capacity_bytes = queue_bytes;
  cfg.fabric_link.ecn_threshold_bytes = ecn_threshold;
  cfg.tcp.delayed_ack = tcp == TcpVariant::DelayedAck;
  cfg.tcp.dctcp = tcp == TcpVariant::Dctcp;
  cfg.ecmp_port_sensitive = ecmp_port_sensitive;
  return cfg;
}

std::string Scenario::summary() const {
  std::ostringstream os;
  os << tors << "x" << spines << " spines, " << total_hosts() << " hosts, "
     << flows.size() << " flows, " << tcp_variant_name(tcp) << ", "
     << duration_ns / 1'000'000.0 << "ms, seed=" << seed;
  return os.str();
}

std::string Scenario::serialize() const {
  std::ostringstream os;
  os << kHeader << "\n";
  os << "seed=" << seed << "\n";
  os << "tors=" << tors << "\n";
  os << "spines=" << spines << "\n";
  os << "hosts_per_tor=" << hosts_per_tor << "\n";
  os << "queue_bytes=" << queue_bytes << "\n";
  os << "ecn_threshold=" << ecn_threshold << "\n";
  os << "tcp=" << tcp_variant_name(tcp) << "\n";
  os << "duration_ns=" << duration_ns << "\n";
  os << "ecmp_port_sensitive=" << (ecmp_port_sensitive ? 1 : 0) << "\n";
  for (const FlowSpec& f : flows) {
    os << "flow=" << f.src << "," << f.dst << "," << f.bytes << ","
       << f.start_ns << "," << f.flow_id << "\n";
  }
  return os.str();
}

Scenario Scenario::parse(const std::string& text) {
  Scenario sc;
  sc.flows.clear();
  std::istringstream is{text};
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario: malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "seed") {
      sc.seed = parse_u64(value, key);
    } else if (key == "tors") {
      sc.tors = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "spines") {
      sc.spines = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "hosts_per_tor") {
      sc.hosts_per_tor = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "queue_bytes") {
      sc.queue_bytes = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "ecn_threshold") {
      sc.ecn_threshold = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "tcp") {
      if (value == "newreno") {
        sc.tcp = TcpVariant::NewReno;
      } else if (value == "delayed_ack") {
        sc.tcp = TcpVariant::DelayedAck;
      } else if (value == "dctcp") {
        sc.tcp = TcpVariant::Dctcp;
      } else {
        throw std::invalid_argument("scenario: unknown tcp variant '" +
                                    value + "'");
      }
    } else if (key == "duration_ns") {
      sc.duration_ns = static_cast<std::int64_t>(parse_u64(value, key));
    } else if (key == "ecmp_port_sensitive") {
      // Absent in pre-memo files (defaults to true), so old scenario
      // files keep parsing.
      sc.ecmp_port_sensitive = parse_u64(value, key) != 0;
    } else if (key == "flow") {
      FlowSpec f;
      std::istringstream fs{value};
      std::string part;
      std::vector<std::uint64_t> parts;
      while (std::getline(fs, part, ',')) {
        parts.push_back(parse_u64(part, "flow"));
      }
      if (parts.size() != 5) {
        throw std::invalid_argument("scenario: flow needs 5 fields, got '" +
                                    value + "'");
      }
      f.src = static_cast<net::HostId>(parts[0]);
      f.dst = static_cast<net::HostId>(parts[1]);
      f.bytes = parts[2];
      f.start_ns = static_cast<std::int64_t>(parts[3]);
      f.flow_id = parts[4];
      sc.flows.push_back(f);
    } else {
      throw std::invalid_argument("scenario: unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    throw std::invalid_argument("scenario: missing header line '" +
                                std::string(kHeader) + "'");
  }
  sc.validate();
  return sc;
}

void Scenario::validate() const {
  clos().validate();
  if (duration_ns <= 0) {
    throw std::invalid_argument("scenario: duration must be positive");
  }
  if (queue_bytes < 2000) {
    throw std::invalid_argument(
        "scenario: queue_bytes must hold at least one full packet");
  }
  std::set<std::pair<net::HostId, std::int64_t>> starts;
  std::set<std::uint64_t> ids;
  for (const FlowSpec& f : flows) {
    if (f.src >= total_hosts() || f.dst >= total_hosts()) {
      throw std::invalid_argument("scenario: flow endpoint out of range");
    }
    if (f.src == f.dst) {
      throw std::invalid_argument("scenario: flow src == dst");
    }
    if (f.bytes == 0) {
      throw std::invalid_argument("scenario: flow bytes must be positive");
    }
    if (f.start_ns < 0 || f.start_ns >= duration_ns) {
      throw std::invalid_argument("scenario: flow start outside [0, duration)");
    }
    if (f.flow_id == 0 || !ids.insert(f.flow_id).second) {
      throw std::invalid_argument("scenario: flow ids must be unique and > 0");
    }
    if (!starts.insert({f.src, f.start_ns}).second) {
      throw std::invalid_argument(
          "scenario: per-host flow start times must be unique (two "
          "same-instant open_flow calls on one host would leave port "
          "assignment order-dependent)");
    }
  }
}

void save_scenario(const Scenario& sc, const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error("save_scenario: cannot open " + path);
  }
  out << sc.serialize();
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("load_scenario: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return Scenario::parse(ss.str());
}

}  // namespace esim::check
