// Seeded scenario generation and failure shrinking.
//
// ScenarioFuzzer::next() samples a fresh, valid Scenario from a seeded
// sim::Rng: Clos dimensions, fabric queue depth, TCP variant, and a flow
// list with globally unique start times (see scenario.h for why). The
// whole sequence is a pure function of the fuzzer seed, so a failing run
// is reproducible from `--seed N` alone even before the repro file is
// written.
//
// shrink() greedily minimizes a failing scenario against a caller-supplied
// "still fails" predicate: drop flow chunks (ddmin-style), halve flow
// sizes, shave topology dimensions, and halve the horizon — accepting any
// candidate that validates and still fails. The result is what lands in
// the repro file.
#pragma once

#include <cstdint>
#include <functional>

#include "check/scenario.h"
#include "sim/random.h"

namespace esim::check {

class ScenarioFuzzer {
 public:
  struct Options {
    std::uint32_t min_flows = 4;
    std::uint32_t max_flows = 24;
    /// Flow sizes are drawn as multiples of one MSS up to this many.
    std::uint32_t max_flow_mss = 64;
    /// Shrinking stops after this many predicate evaluations.
    int max_shrink_evals = 160;
  };

  explicit ScenarioFuzzer(std::uint64_t seed) : rng_{seed} {}
  ScenarioFuzzer(std::uint64_t seed, const Options& options)
      : rng_{seed}, options_{options} {}

  /// Samples the next scenario in this fuzzer's deterministic sequence.
  Scenario next();

  /// Greedily minimizes `failing` while `still_fails(candidate)` holds.
  /// The predicate is only called on candidates that pass validate().
  Scenario shrink(const Scenario& failing,
                  const std::function<bool(const Scenario&)>& still_fails)
      const;

 private:
  sim::Rng rng_;
  Options options_;
};

}  // namespace esim::check
