// Flow-level (fluid) simulation baseline.
//
// The paper positions ML-assisted packet simulation against the classic
// way to make big simulations tractable: give up packets entirely and
// model flows as fluids sharing link capacity (§2 "flow-level systems",
// §8 [Misra et al., Raiciu et al.]). This module implements that
// baseline faithfully so the accuracy/speed comparison can be run: flows
// traverse the same Clos topology (paths from the same deterministic
// ECMP replay), share links max-min fairly, and complete when their
// bytes drain. There are no packets, no TCP dynamics, no queues — which
// is precisely the fidelity it gives up.
//
// The engine is event-driven on arrivals and departures: whenever the
// active set changes, max-min rates are recomputed by progressive
// filling and the next completion time is derived analytically.
#pragma once

#include <cstdint>
#include <vector>

#include "net/clos.h"
#include "sim/time.h"

namespace esim::flowsim {

/// Outcome of one fluid flow.
struct FlowResult {
  std::uint64_t id = 0;
  net::HostId src = 0;
  net::HostId dst = 0;
  std::uint64_t bytes = 0;
  sim::SimTime arrival;
  sim::SimTime completion;
  /// Flow completion time.
  sim::SimTime fct() const { return completion - arrival; }
};

/// Max-min fair fluid simulator over a Clos topology.
class FlowLevelSimulator {
 public:
  /// All links share one bandwidth (as in the packet-level experiments).
  FlowLevelSimulator(const net::ClosSpec& spec, double bandwidth_bps);

  /// Registers a flow before run(). Arrivals may be in any order.
  void add_flow(std::uint64_t id, net::HostId src, net::HostId dst,
                std::uint64_t bytes, sim::SimTime arrival);

  /// Runs to completion of every registered flow.
  void run();

  /// Results, in completion order. Valid after run().
  const std::vector<FlowResult>& results() const { return results_; }

  /// Number of max-min rate recomputations performed (the "event count"
  /// of a fluid simulator).
  std::uint64_t rate_recomputations() const { return recomputations_; }

  /// Number of directed links in the modeled topology.
  std::size_t link_count() const { return link_count_; }

 private:
  struct PendingFlow {
    std::uint64_t id;
    net::HostId src, dst;
    std::uint64_t bytes_total;
    double remaining;
    sim::SimTime arrival;
    std::vector<std::uint32_t> links;  // directed link ids on the path
  };

  std::vector<std::uint32_t> route(net::HostId src, net::HostId dst) const;
  void recompute_rates(std::vector<PendingFlow*>& active,
                       std::vector<double>& rates) const;

  net::ClosSpec spec_;
  double bandwidth_bps_;
  std::size_t link_count_ = 0;

  // Directed link id layout (dense):
  //   [0, H)            host -> ToR uplinks
  //   [H, 2H)           ToR -> host downlinks
  //   then ToR->Agg, Agg->ToR, Agg->Core, Core->Agg blocks.
  std::uint32_t uplink_id(net::HostId h) const;
  std::uint32_t downlink_id(net::HostId h) const;
  std::uint32_t tor_agg_id(std::uint32_t cluster, std::uint32_t tor,
                           std::uint32_t agg, bool up) const;
  std::uint32_t agg_core_id(std::uint32_t cluster, std::uint32_t agg,
                            std::uint32_t core, bool up) const;

  std::vector<PendingFlow> flows_;
  std::vector<FlowResult> results_;
  std::uint64_t recomputations_ = 0;
};

}  // namespace esim::flowsim
