// Flow-level (fluid) simulation baseline and online stepping engine.
//
// The paper positions ML-assisted packet simulation against the classic
// way to make big simulations tractable: give up packets entirely and
// model flows as fluids sharing link capacity (§2 "flow-level systems",
// §8 [Misra et al., Raiciu et al.]). This module implements that
// baseline faithfully so the accuracy/speed comparison can be run: flows
// traverse the same Clos topology (paths from the same deterministic
// ECMP replay), share links max-min fairly, and complete when their
// bytes drain. There are no packets, no TCP dynamics, no queues — which
// is precisely the fidelity it gives up.
//
// The engine is event-driven on arrivals and departures: whenever the
// active set changes, max-min rates are recomputed by progressive
// filling and the next completion time is derived analytically.
//
// Two driving modes share one core:
//   * offline — add_flow() everything up front, run() to completion
//     (the original baseline-comparison mode);
//   * online — interleave add_flow()/remove_flow() with advance_to(t)
//     so an outer discrete-event simulation can step the fluid model to
//     each packet arrival and read rate_of() for the current max-min
//     share (the `core::FluidClusterBackend` demotion tier).
// Both modes are deterministic: ties are broken by flow id, the active
// set preserves (arrival, id) admission order, and rates are recomputed
// lazily exactly once per active-set change.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "net/clos.h"
#include "sim/time.h"

namespace esim::flowsim {

/// Outcome of one fluid flow.
struct FlowResult {
  std::uint64_t id = 0;
  net::HostId src = 0;
  net::HostId dst = 0;
  std::uint64_t bytes = 0;
  sim::SimTime arrival;
  sim::SimTime completion;
  /// Flow completion time.
  sim::SimTime fct() const { return completion - arrival; }
};

/// Max-min fair fluid simulator over a Clos topology.
class FlowLevelSimulator {
 public:
  /// All links share one bandwidth (as in the packet-level experiments).
  FlowLevelSimulator(const net::ClosSpec& spec, double bandwidth_bps);

  /// Registers a flow. Offline: call before run(), arrivals may be in
  /// any order. Online: may be called between advance_to() steps; an
  /// arrival earlier than now() is clamped to now() (the fluid model
  /// cannot rewrite the past).
  void add_flow(std::uint64_t id, net::HostId src, net::HostId dst,
                std::uint64_t bytes, sim::SimTime arrival);

  /// Runs to completion of every registered flow. Leaves now() at the
  /// last completion instant.
  void run();

  /// Advances virtual time to `t`, admitting arrivals, draining bytes
  /// at the current max-min rates, and recording completions on the
  /// way. Monotonic: a target earlier than now() is a no-op. Arrivals
  /// due exactly at `t` are admitted and rated before returning, so
  /// rate_of() is immediately meaningful.
  void advance_to(sim::SimTime t);

  /// Withdraws a flow that has not completed (active or not yet
  /// arrived) without recording a FlowResult — the outer simulation
  /// decided the flow went idle or left the cluster. Returns false if
  /// no such flow is in play. Rates are recomputed on the next query.
  bool remove_flow(std::uint64_t id);

  /// Current max-min rate of an active flow in bits/sec; 0 if the flow
  /// is unknown, not yet arrived, removed, or already complete.
  double rate_of(std::uint64_t id);

  /// Number of flows currently draining (post-arrival, pre-completion).
  std::size_t active_flows() const { return active_.size(); }

  /// Current virtual time of the fluid model.
  sim::SimTime now() const { return sim::SimTime::from_seconds_f(now_s_); }

  /// Results, in completion order. Valid after run() / advance_to().
  const std::vector<FlowResult>& results() const { return results_; }

  /// Number of max-min rate recomputations performed (the "event count"
  /// of a fluid simulator). Exactly one per active-set change: arrival
  /// instants, completion instants, and effective removals.
  std::uint64_t rate_recomputations() const { return recomputations_; }

  /// Number of directed links in the modeled topology.
  std::size_t link_count() const { return link_count_; }

 private:
  struct PendingFlow {
    std::uint64_t id;
    net::HostId src, dst;
    std::uint64_t bytes_total;
    double remaining;
    bool removed = false;  // tombstone for remove_flow() before arrival
    sim::SimTime arrival;
    std::vector<std::uint32_t> links;  // directed link ids on the path
  };
  struct ArrivalOrder {
    // Min-heap by (arrival, id): deterministic admission order.
    bool operator()(const PendingFlow* a, const PendingFlow* b) const {
      if (a->arrival != b->arrival) return a->arrival > b->arrival;
      return a->id > b->id;
    }
  };

  std::vector<std::uint32_t> route(net::HostId src, net::HostId dst) const;
  void recompute_rates(std::vector<PendingFlow*>& active,
                       std::vector<double>& rates) const;
  void refresh_rates();
  /// Advances to `target_s`; when `stop_at_target` is false the target
  /// acts only as an upper bound and now() is left at the last event
  /// (run() semantics) instead of being pushed to the target.
  void step_until(double target_s, bool stop_at_target);

  net::ClosSpec spec_;
  double bandwidth_bps_;
  std::size_t link_count_ = 0;

  // Directed link id layout (dense):
  //   [0, H)            host -> ToR uplinks
  //   [H, 2H)           ToR -> host downlinks
  //   then ToR->Agg, Agg->ToR, Agg->Core, Core->Agg blocks.
  std::uint32_t uplink_id(net::HostId h) const;
  std::uint32_t downlink_id(net::HostId h) const;
  std::uint32_t tor_agg_id(std::uint32_t cluster, std::uint32_t tor,
                           std::uint32_t agg, bool up) const;
  std::uint32_t agg_core_id(std::uint32_t cluster, std::uint32_t agg,
                            std::uint32_t core, bool up) const;

  std::deque<PendingFlow> flows_;  // stable storage; heap/active point in
  std::priority_queue<PendingFlow*, std::vector<PendingFlow*>, ArrivalOrder>
      arrivals_;
  std::vector<PendingFlow*> active_;
  std::vector<double> rates_;  // aligned with active_
  bool rates_dirty_ = false;
  double now_s_ = 0.0;
  std::vector<FlowResult> results_;
  std::uint64_t recomputations_ = 0;
};

}  // namespace esim::flowsim
