#include "flowsim/flow_level.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/ecmp.h"

namespace esim::flowsim {

namespace {
// Same-instant slack for arrival admission (seconds) and the byte
// threshold below which a flow counts as drained. Both match the
// original offline engine so run() results are unchanged.
constexpr double kInstantEps = 1e-15;
constexpr double kDrainedBytes = 1e-6;
}  // namespace

FlowLevelSimulator::FlowLevelSimulator(const net::ClosSpec& spec,
                                       double bandwidth_bps)
    : spec_{spec}, bandwidth_bps_{bandwidth_bps} {
  spec_.validate();
  if (bandwidth_bps <= 0) {
    throw std::invalid_argument("FlowLevelSimulator: bandwidth must be > 0");
  }
  const std::size_t hosts = spec_.total_hosts();
  const std::size_t tor_agg =
      static_cast<std::size_t>(spec_.clusters) * spec_.tors_per_cluster *
      spec_.aggs_per_cluster;
  const std::size_t agg_core = static_cast<std::size_t>(spec_.clusters) *
                               spec_.aggs_per_cluster * spec_.cores;
  link_count_ = 2 * hosts + 2 * tor_agg + 2 * agg_core;
}

std::uint32_t FlowLevelSimulator::uplink_id(net::HostId h) const {
  return h;
}

std::uint32_t FlowLevelSimulator::downlink_id(net::HostId h) const {
  return spec_.total_hosts() + h;
}

std::uint32_t FlowLevelSimulator::tor_agg_id(std::uint32_t cluster,
                                             std::uint32_t tor,
                                             std::uint32_t agg,
                                             bool up) const {
  const std::uint32_t base = 2 * spec_.total_hosts();
  const std::uint32_t per_dir = spec_.clusters * spec_.tors_per_cluster *
                                spec_.aggs_per_cluster;
  const std::uint32_t index =
      (cluster * spec_.tors_per_cluster + tor) * spec_.aggs_per_cluster +
      agg;
  return base + (up ? 0 : per_dir) + index;
}

std::uint32_t FlowLevelSimulator::agg_core_id(std::uint32_t cluster,
                                              std::uint32_t agg,
                                              std::uint32_t core,
                                              bool up) const {
  const std::uint32_t base =
      2 * spec_.total_hosts() +
      2 * spec_.clusters * spec_.tors_per_cluster * spec_.aggs_per_cluster;
  const std::uint32_t per_dir =
      spec_.clusters * spec_.aggs_per_cluster * spec_.cores;
  const std::uint32_t index =
      (cluster * spec_.aggs_per_cluster + agg) * spec_.cores + core;
  return base + (up ? 0 : per_dir) + index;
}

std::vector<std::uint32_t> FlowLevelSimulator::route(net::HostId src,
                                                     net::HostId dst) const {
  net::FlowKey key{src, dst, 0, 80};
  const auto path = net::compute_path(spec_, key);
  std::vector<std::uint32_t> links;
  links.push_back(uplink_id(src));
  if (path.len == 3) {
    const std::uint32_t c = spec_.cluster_of_host(src);
    const std::uint32_t tor_src = path.hops[0] - spec_.tor_id(c, 0);
    const std::uint32_t tor_dst = path.hops[2] - spec_.tor_id(c, 0);
    const std::uint32_t agg =
        path.hops[1] - spec_.agg_id(c, 0);
    links.push_back(tor_agg_id(c, tor_src, agg, /*up=*/true));
    links.push_back(tor_agg_id(c, tor_dst, agg, /*up=*/false));
  } else if (path.len == 5) {
    const std::uint32_t cs = spec_.cluster_of_host(src);
    const std::uint32_t cd = spec_.cluster_of_host(dst);
    const std::uint32_t tor_src = path.hops[0] - spec_.tor_id(cs, 0);
    const std::uint32_t agg_src = path.hops[1] - spec_.agg_id(cs, 0);
    const std::uint32_t core = path.hops[2] - spec_.core_id(0);
    const std::uint32_t agg_dst = path.hops[3] - spec_.agg_id(cd, 0);
    const std::uint32_t tor_dst = path.hops[4] - spec_.tor_id(cd, 0);
    links.push_back(tor_agg_id(cs, tor_src, agg_src, true));
    links.push_back(agg_core_id(cs, agg_src, core, true));
    links.push_back(agg_core_id(cd, agg_dst, core, false));
    links.push_back(tor_agg_id(cd, tor_dst, agg_dst, false));
  }
  links.push_back(downlink_id(dst));
  return links;
}

void FlowLevelSimulator::add_flow(std::uint64_t id, net::HostId src,
                                  net::HostId dst, std::uint64_t bytes,
                                  sim::SimTime arrival) {
  if (src == dst || src >= spec_.total_hosts() ||
      dst >= spec_.total_hosts()) {
    throw std::invalid_argument("FlowLevelSimulator: bad endpoints");
  }
  PendingFlow f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.bytes_total = std::max<std::uint64_t>(bytes, 1);
  f.remaining = static_cast<double>(f.bytes_total);
  f.arrival = arrival;
  if (f.arrival.to_seconds() < now_s_) {
    f.arrival = sim::SimTime::from_seconds_f(now_s_);
  }
  f.links = route(src, dst);
  flows_.push_back(std::move(f));
  arrivals_.push(&flows_.back());
}

void FlowLevelSimulator::recompute_rates(std::vector<PendingFlow*>& active,
                                         std::vector<double>& rates) const {
  // Progressive filling: repeatedly find the link with the smallest fair
  // share among unfrozen flows, freeze those flows at that share.
  const std::size_t n = active.size();
  rates.assign(n, -1.0);
  std::vector<double> capacity(link_count_, bandwidth_bps_);
  std::vector<std::uint32_t> load(link_count_, 0);
  for (const auto* f : active) {
    for (auto l : f->links) ++load[l];
  }
  std::size_t frozen = 0;
  while (frozen < n) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = 0;
    bool found = false;
    for (std::uint32_t l = 0; l < link_count_; ++l) {
      if (load[l] == 0) continue;
      const double share = capacity[l] / load[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
        found = true;
      }
    }
    if (!found) break;  // defensive: every flow uses >= 1 link
    for (std::size_t i = 0; i < n; ++i) {
      if (rates[i] >= 0) continue;
      auto& f = *active[i];
      if (std::find(f.links.begin(), f.links.end(), best_link) ==
          f.links.end()) {
        continue;
      }
      rates[i] = best_share;
      ++frozen;
      for (auto l : f.links) {
        capacity[l] -= best_share;
        --load[l];
      }
    }
    // Numerical hygiene: the bottleneck link ends exactly exhausted.
    capacity[best_link] = std::max(capacity[best_link], 0.0);
    load[best_link] = 0;
  }
}

void FlowLevelSimulator::refresh_rates() {
  if (!rates_dirty_) return;
  rates_dirty_ = false;
  if (active_.empty()) {
    rates_.clear();
    return;
  }
  recompute_rates(active_, rates_);
  ++recomputations_;
}

bool FlowLevelSimulator::remove_flow(std::uint64_t id) {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->id != id) continue;
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    rates_dirty_ = true;
    return true;
  }
  // Not yet arrived: tombstone it; the admission loop skips removed
  // flows when they surface, so the heap needs no surgery.
  for (auto& f : flows_) {
    if (f.id == id && !f.removed && f.remaining > kDrainedBytes &&
        f.arrival.to_seconds() > now_s_ + kInstantEps) {
      f.removed = true;
      return true;
    }
  }
  return false;
}

double FlowLevelSimulator::rate_of(std::uint64_t id) {
  refresh_rates();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->id == id) return rates_[i];
  }
  return 0.0;
}

void FlowLevelSimulator::step_until(double target_s, bool stop_at_target) {
  for (;;) {
    // Admit every arrival due at the current instant (skipping
    // tombstoned flows), in (arrival, id) order.
    while (!arrivals_.empty() &&
           (arrivals_.top()->removed ||
            arrivals_.top()->arrival.to_seconds() <= now_s_ + kInstantEps)) {
      PendingFlow* f = arrivals_.top();
      arrivals_.pop();
      if (f->removed) continue;
      active_.push_back(f);
      rates_dirty_ = true;
    }
    if (active_.empty()) {
      // Idle: jump to the next arrival if it falls inside the window.
      if (!arrivals_.empty() &&
          arrivals_.top()->arrival.to_seconds() <= target_s + kInstantEps) {
        now_s_ = std::max(now_s_, arrivals_.top()->arrival.to_seconds());
        continue;
      }
      if (stop_at_target) now_s_ = std::max(now_s_, target_s);
      return;
    }
    refresh_rates();

    // Earliest completion among active flows at these rates.
    double dt_complete = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double r = rates_[i] / 8.0;  // bytes/sec
      if (r > 0) {
        dt_complete = std::min(dt_complete, active_[i]->remaining / r);
      }
    }
    // Time until the next arrival.
    double dt_arrival = std::numeric_limits<double>::infinity();
    if (!arrivals_.empty()) {
      dt_arrival = arrivals_.top()->arrival.to_seconds() - now_s_;
    }
    const double dt_target = target_s - now_s_;

    const double dt = std::min({dt_complete, dt_arrival, dt_target});
    if (dt <= 0.0) return;  // at the target with nothing due right now
    // Drain bytes over dt.
    now_s_ += dt;
    std::vector<PendingFlow*> still_active;
    std::vector<double> still_rates;
    bool completed = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double r = rates_[i] / 8.0;
      active_[i]->remaining -= r * dt;
      if (active_[i]->remaining <= kDrainedBytes) {
        FlowResult res;
        res.id = active_[i]->id;
        res.src = active_[i]->src;
        res.dst = active_[i]->dst;
        res.bytes = active_[i]->bytes_total;
        res.arrival = active_[i]->arrival;
        res.completion = sim::SimTime::from_seconds_f(now_s_);
        results_.push_back(res);
        completed = true;
      } else {
        still_active.push_back(active_[i]);
        still_rates.push_back(rates_[i]);
      }
    }
    active_.swap(still_active);
    rates_.swap(still_rates);
    if (completed) rates_dirty_ = true;
  }
}

void FlowLevelSimulator::advance_to(sim::SimTime t) {
  const double target_s = t.to_seconds();
  if (target_s <= now_s_) return;
  step_until(target_s, /*stop_at_target=*/true);
}

void FlowLevelSimulator::run() {
  step_until(std::numeric_limits<double>::infinity(),
             /*stop_at_target=*/false);
}

}  // namespace esim::flowsim
