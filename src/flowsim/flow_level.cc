#include "flowsim/flow_level.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/ecmp.h"

namespace esim::flowsim {

FlowLevelSimulator::FlowLevelSimulator(const net::ClosSpec& spec,
                                       double bandwidth_bps)
    : spec_{spec}, bandwidth_bps_{bandwidth_bps} {
  spec_.validate();
  if (bandwidth_bps <= 0) {
    throw std::invalid_argument("FlowLevelSimulator: bandwidth must be > 0");
  }
  const std::size_t hosts = spec_.total_hosts();
  const std::size_t tor_agg =
      static_cast<std::size_t>(spec_.clusters) * spec_.tors_per_cluster *
      spec_.aggs_per_cluster;
  const std::size_t agg_core = static_cast<std::size_t>(spec_.clusters) *
                               spec_.aggs_per_cluster * spec_.cores;
  link_count_ = 2 * hosts + 2 * tor_agg + 2 * agg_core;
}

std::uint32_t FlowLevelSimulator::uplink_id(net::HostId h) const {
  return h;
}

std::uint32_t FlowLevelSimulator::downlink_id(net::HostId h) const {
  return spec_.total_hosts() + h;
}

std::uint32_t FlowLevelSimulator::tor_agg_id(std::uint32_t cluster,
                                             std::uint32_t tor,
                                             std::uint32_t agg,
                                             bool up) const {
  const std::uint32_t base = 2 * spec_.total_hosts();
  const std::uint32_t per_dir = spec_.clusters * spec_.tors_per_cluster *
                                spec_.aggs_per_cluster;
  const std::uint32_t index =
      (cluster * spec_.tors_per_cluster + tor) * spec_.aggs_per_cluster +
      agg;
  return base + (up ? 0 : per_dir) + index;
}

std::uint32_t FlowLevelSimulator::agg_core_id(std::uint32_t cluster,
                                              std::uint32_t agg,
                                              std::uint32_t core,
                                              bool up) const {
  const std::uint32_t base =
      2 * spec_.total_hosts() +
      2 * spec_.clusters * spec_.tors_per_cluster * spec_.aggs_per_cluster;
  const std::uint32_t per_dir =
      spec_.clusters * spec_.aggs_per_cluster * spec_.cores;
  const std::uint32_t index =
      (cluster * spec_.aggs_per_cluster + agg) * spec_.cores + core;
  return base + (up ? 0 : per_dir) + index;
}

std::vector<std::uint32_t> FlowLevelSimulator::route(net::HostId src,
                                                     net::HostId dst) const {
  net::FlowKey key{src, dst, 0, 80};
  const auto path = net::compute_path(spec_, key);
  std::vector<std::uint32_t> links;
  links.push_back(uplink_id(src));
  if (path.len == 3) {
    const std::uint32_t c = spec_.cluster_of_host(src);
    const std::uint32_t tor_src = path.hops[0] - spec_.tor_id(c, 0);
    const std::uint32_t tor_dst = path.hops[2] - spec_.tor_id(c, 0);
    const std::uint32_t agg =
        path.hops[1] - spec_.agg_id(c, 0);
    links.push_back(tor_agg_id(c, tor_src, agg, /*up=*/true));
    links.push_back(tor_agg_id(c, tor_dst, agg, /*up=*/false));
  } else if (path.len == 5) {
    const std::uint32_t cs = spec_.cluster_of_host(src);
    const std::uint32_t cd = spec_.cluster_of_host(dst);
    const std::uint32_t tor_src = path.hops[0] - spec_.tor_id(cs, 0);
    const std::uint32_t agg_src = path.hops[1] - spec_.agg_id(cs, 0);
    const std::uint32_t core = path.hops[2] - spec_.core_id(0);
    const std::uint32_t agg_dst = path.hops[3] - spec_.agg_id(cd, 0);
    const std::uint32_t tor_dst = path.hops[4] - spec_.tor_id(cd, 0);
    links.push_back(tor_agg_id(cs, tor_src, agg_src, true));
    links.push_back(agg_core_id(cs, agg_src, core, true));
    links.push_back(agg_core_id(cd, agg_dst, core, false));
    links.push_back(tor_agg_id(cd, tor_dst, agg_dst, false));
  }
  links.push_back(downlink_id(dst));
  return links;
}

void FlowLevelSimulator::add_flow(std::uint64_t id, net::HostId src,
                                  net::HostId dst, std::uint64_t bytes,
                                  sim::SimTime arrival) {
  if (src == dst || src >= spec_.total_hosts() ||
      dst >= spec_.total_hosts()) {
    throw std::invalid_argument("FlowLevelSimulator: bad endpoints");
  }
  PendingFlow f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.bytes_total = std::max<std::uint64_t>(bytes, 1);
  f.remaining = static_cast<double>(f.bytes_total);
  f.arrival = arrival;
  f.links = route(src, dst);
  flows_.push_back(std::move(f));
}

void FlowLevelSimulator::recompute_rates(std::vector<PendingFlow*>& active,
                                         std::vector<double>& rates) const {
  // Progressive filling: repeatedly find the link with the smallest fair
  // share among unfrozen flows, freeze those flows at that share.
  const std::size_t n = active.size();
  rates.assign(n, -1.0);
  std::vector<double> capacity(link_count_, bandwidth_bps_);
  std::vector<std::uint32_t> load(link_count_, 0);
  for (const auto* f : active) {
    for (auto l : f->links) ++load[l];
  }
  std::size_t frozen = 0;
  while (frozen < n) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = 0;
    bool found = false;
    for (std::uint32_t l = 0; l < link_count_; ++l) {
      if (load[l] == 0) continue;
      const double share = capacity[l] / load[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
        found = true;
      }
    }
    if (!found) break;  // defensive: every flow uses >= 1 link
    for (std::size_t i = 0; i < n; ++i) {
      if (rates[i] >= 0) continue;
      auto& f = *active[i];
      if (std::find(f.links.begin(), f.links.end(), best_link) ==
          f.links.end()) {
        continue;
      }
      rates[i] = best_share;
      ++frozen;
      for (auto l : f.links) {
        capacity[l] -= best_share;
        --load[l];
      }
    }
    // Numerical hygiene: the bottleneck link ends exactly exhausted.
    capacity[best_link] = std::max(capacity[best_link], 0.0);
    load[best_link] = 0;
  }
}

void FlowLevelSimulator::run() {
  std::sort(flows_.begin(), flows_.end(),
            [](const PendingFlow& a, const PendingFlow& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  std::vector<PendingFlow*> active;
  std::vector<double> rates;
  std::size_t next_arrival = 0;
  double now_s = 0.0;

  while (!active.empty() || next_arrival < flows_.size()) {
    // Admit arrivals at the current instant.
    if (active.empty() && next_arrival < flows_.size()) {
      now_s = std::max(now_s, flows_[next_arrival].arrival.to_seconds());
    }
    while (next_arrival < flows_.size() &&
           flows_[next_arrival].arrival.to_seconds() <= now_s + 1e-15) {
      active.push_back(&flows_[next_arrival]);
      ++next_arrival;
    }

    recompute_rates(active, rates);
    ++recomputations_;

    // Earliest completion among active flows at these rates.
    double dt_complete = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      const double r = rates[i] / 8.0;  // bytes/sec
      if (r > 0) {
        dt_complete = std::min(dt_complete, active[i]->remaining / r);
      }
    }
    // Time until the next arrival.
    double dt_arrival = std::numeric_limits<double>::infinity();
    if (next_arrival < flows_.size()) {
      dt_arrival = flows_[next_arrival].arrival.to_seconds() - now_s;
    }

    const double dt = std::min(dt_complete, dt_arrival);
    // Drain bytes over dt.
    now_s += dt;
    std::vector<PendingFlow*> still_active;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const double r = rates[i] / 8.0;
      active[i]->remaining -= r * dt;
      if (active[i]->remaining <= 1e-6) {
        FlowResult res;
        res.id = active[i]->id;
        res.src = active[i]->src;
        res.dst = active[i]->dst;
        res.bytes = active[i]->bytes_total;
        res.arrival = active[i]->arrival;
        res.completion = sim::SimTime::from_seconds_f(now_s);
        results_.push_back(res);
      } else {
        still_active.push_back(active[i]);
      }
    }
    active.swap(still_active);
  }
}

}  // namespace esim::flowsim
