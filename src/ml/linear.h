// Fully connected layer.
//
// Stateless forward/backward: the caller retains the forward input and
// passes it back for the gradient step. This keeps one layer usable at
// every timestep of a sequence without internal cache bookkeeping.
#pragma once

#include <cstddef>

#include "ml/module.h"
#include "ml/tensor.h"
#include "sim/random.h"

namespace esim::ml {

/// y = x W^T + b with W stored [out x in].
class Linear : public Module {
 public:
  /// Xavier-initialised layer; `rng` provides the (deterministic) draws.
  Linear(std::size_t in, std::size_t out, sim::Rng& rng);

  /// Forward: x is [N x in]; returns [N x out].
  Tensor forward(const Tensor& x) const;

  /// Backward for one forward call: `x` must be the same input, `dy` the
  /// loss gradient w.r.t. the output. Accumulates weight gradients and
  /// returns dL/dx.
  Tensor backward(const Tensor& x, const Tensor& dy);

  std::size_t in_features() const { return w_.cols(); }
  std::size_t out_features() const { return w_.rows(); }

  /// Direct access for tests/serialization.
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

  std::vector<Parameter> parameters() override;

 private:
  Tensor w_;   // [out x in]
  Tensor b_;   // [1 x out]
  Tensor gw_;  // same shape as w_
  Tensor gb_;  // same shape as b_
};

}  // namespace esim::ml
