// Stochastic gradient descent with classical momentum — the optimizer the
// paper trained with (§4.2: "stochastic gradient descent ... with a
// learning rate of 0.0001 and momentum of 0.9").
#pragma once

#include <vector>

#include "ml/module.h"
#include "ml/tensor.h"

namespace esim::ml {

/// SGD + momentum over a fixed parameter set. Optionally clips the global
/// gradient norm before each step (useful for RNN stability).
class SgdMomentum {
 public:
  struct Config {
    double learning_rate = 1e-4;
    double momentum = 0.9;
    /// 0 disables clipping; otherwise the global L2 norm is clipped here.
    double clip_norm = 5.0;
  };

  /// Captures the parameter set (pointers must outlive the optimizer).
  SgdMomentum(std::vector<Parameter> params, const Config& config);

  /// Captures `module.parameters()` and additionally bumps the module's
  /// weight version on every step(), so compiled InferenceSessions
  /// watching the module detect the write and refuse to serve the stale
  /// snapshot. Trainers should prefer this overload.
  SgdMomentum(Module& module, const Config& config);

  /// Applies one update from the currently accumulated gradients.
  /// Returns the (pre-clip) global gradient norm, handy for diagnostics.
  double step();

  /// Zeroes all gradient accumulators.
  void zero_grad();

 private:
  std::vector<Parameter> params_;
  Config config_;
  std::vector<Tensor> velocity_;
  Module* module_ = nullptr;  // version-bumped on step(); may be null
};

}  // namespace esim::ml
