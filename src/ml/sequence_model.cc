#include "ml/sequence_model.h"

#include <stdexcept>
#include <type_traits>

namespace esim::ml {
namespace {

/// Adapter template: wraps ml::Lstm or ml::Gru (identical API shapes).
template <typename Net>
class NetModel final : public SequenceModel {
 public:
  NetModel(std::size_t input, std::size_t hidden, std::size_t layers,
           sim::Rng& rng)
      : net_{input, hidden, layers, rng} {}

  explicit NetModel(const Net& net) : net_{net} {}

  class NetState final : public State {
   public:
    explicit NetState(typename Net::State s) : state{std::move(s)} {}
    typename Net::State state;
  };

  class NetCache final : public Cache {
   public:
    typename Net::SequenceCache cache;
  };

  std::unique_ptr<State> make_state(std::size_t batch) const override {
    return std::make_unique<NetState>(net_.initial_state(batch));
  }

  Tensor step(const Tensor& x, State& state) const override {
    return net_.step(x, downcast(state).state);
  }

  std::vector<Tensor> forward(const std::vector<Tensor>& xs, State& state,
                              std::unique_ptr<Cache>& cache) const override {
    auto owned = std::make_unique<NetCache>();
    auto hs = net_.forward(xs, downcast(state).state, owned->cache);
    cache = std::move(owned);
    return hs;
  }

  void backward(const Cache& cache,
                const std::vector<Tensor>& dhs) override {
    const auto* c = dynamic_cast<const NetCache*>(&cache);
    if (c == nullptr) {
      throw std::invalid_argument("SequenceModel: foreign cache");
    }
    net_.backward(c->cache, dhs);
  }

  std::size_t hidden_size() const override { return net_.hidden_size(); }

  std::unique_ptr<SequenceModel> clone() const override {
    return std::make_unique<NetModel>(net_);
  }

  std::unique_ptr<InferenceSession> make_inference_session(
      const std::vector<InferenceSession::HeadWeights>& heads)
      const override {
    std::vector<InferenceSession::LayerWeights> weights;
    weights.reserve(net_.layers().size());
    for (const auto& layer : net_.layers()) {
      if constexpr (std::is_same_v<Net, Lstm>) {
        weights.push_back(
            {&layer.w_ih(), &layer.w_hh(), &layer.bias(), nullptr});
      } else {
        weights.push_back(
            {&layer.w_ih(), &layer.w_hh(), &layer.b_ih(), &layer.b_hh()});
      }
    }
    constexpr TrunkKind kind =
        std::is_same_v<Net, Lstm> ? TrunkKind::Lstm : TrunkKind::Gru;
    auto session = std::make_unique<InferenceSession>(kind, weights, heads);
    // Stale-session safety net: an optimizer step through this trunk
    // bumps its weight version, after which the snapshot refuses to
    // predict until rebuilt.
    session->watch_weight_source(*this);
    return session;
  }

  std::vector<Parameter> parameters() override {
    return net_.parameters();
  }

 private:
  static NetState& downcast(State& s) {
    auto* ns = dynamic_cast<NetState*>(&s);
    if (ns == nullptr) {
      throw std::invalid_argument("SequenceModel: foreign state");
    }
    return *ns;
  }

  Net net_;
};

}  // namespace

std::unique_ptr<SequenceModel> make_sequence_model(TrunkKind kind,
                                                   std::size_t input,
                                                   std::size_t hidden,
                                                   std::size_t layers,
                                                   sim::Rng& rng) {
  switch (kind) {
    case TrunkKind::Lstm:
      return std::make_unique<NetModel<Lstm>>(input, hidden, layers, rng);
    case TrunkKind::Gru:
      return std::make_unique<NetModel<Gru>>(input, hidden, layers, rng);
  }
  throw std::invalid_argument("make_sequence_model: unknown kind");
}

}  // namespace esim::ml
