// Parameter registry shared by trainable layers.
#pragma once

#include <string>
#include <vector>

#include "ml/tensor.h"

namespace esim::ml {

/// A named weight tensor paired with its gradient accumulator. Both point
/// into the owning layer and remain valid for the layer's lifetime.
struct Parameter {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Anything with trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module (stable order).
  virtual std::vector<Parameter> parameters() = 0;

  /// Clears every gradient accumulator.
  void zero_grad() {
    for (auto& p : parameters()) p.grad->zero();
  }
};

}  // namespace esim::ml
