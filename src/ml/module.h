// Parameter registry shared by trainable layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/tensor.h"

namespace esim::ml {

/// A named weight tensor paired with its gradient accumulator. Both point
/// into the owning layer and remain valid for the layer's lifetime.
struct Parameter {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// The gradient-free analogue of Parameter: a named raw view into weight
/// storage (rows*cols doubles, row-major). Model files load straight into
/// these, so an inference-only consumer never materializes the
/// training-side Tensor/gradient pairs.
struct WeightView {
  std::string name;
  std::size_t rows = 0;
  std::size_t cols = 0;
  double* data = nullptr;
};

/// Anything with trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module (stable order).
  virtual std::vector<Parameter> parameters() = 0;

  /// Clears every gradient accumulator.
  void zero_grad() {
    for (auto& p : parameters()) p.grad->zero();
  }

  /// Monotonic counter over in-place weight mutations. Writers that
  /// update this module's tensors (optimizer steps, bulk parameter
  /// loads) call bump_weight_version(); compiled snapshots
  /// (ml::InferenceSession) record the value they were built from and
  /// refuse to predict once it moves — a missed recompile becomes a
  /// loud error instead of silently serving stale weights.
  std::uint64_t weight_version() const { return weight_version_; }
  void bump_weight_version() { ++weight_version_; }

 private:
  std::uint64_t weight_version_ = 0;
};

}  // namespace esim::ml
