// Fused inference kernels. Bit-identity rationale (see inference.h): the
// naive matmul_nt inner loop is bound by its serial addsd dependency
// chain, not multiply throughput. The kernels here compute many gate
// rows at once — each row's dot product still sums p = 0..n-1 in exactly
// the reference order, so every result matches the reference to the last
// bit, but the rows form independent accumulator chains that fill the
// FPU pipeline. finalize_plan() packs consecutive weight rows in groups
// of eight (column-interleaved: pk[p*8 + r] = w[r][p]) so the SIMD
// variants can load one column of eight rows as contiguous vectors. The
// AVX2/AVX-512 paths keep one row per vector lane; lane arithmetic is
// the same IEEE mul-then-add as the scalar code (this file is compiled
// with -ffp-contract=off, and the AVX2 clone does not enable FMA, so no
// fused multiply-add can change the rounding).
#include "ml/inference.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "ml/activations.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ESIM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace esim::ml {
namespace {

/// Single-row dot with the reference summation order.
inline double dot1(const double* w, std::size_t n, const double* x) {
  double s = 0.0;
  for (std::size_t p = 0; p < n; ++p) s += x[p] * w[p];
  return s;
}

/// matvec over `groups` packed 8-row groups: out[g*8 + r] = dot(row, x).
/// Portable fallback — eight independent scalar chains per group.
void matvec_scalar(const double* pk, std::size_t groups, std::size_t n,
                   const double* x, double* out) {
  for (std::size_t g = 0; g < groups; ++g) {
    const double* w = pk + g * 8 * n;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const double xv = x[p];
      const double* col = w + p * 8;
      s0 += xv * col[0];
      s1 += xv * col[1];
      s2 += xv * col[2];
      s3 += xv * col[3];
      s4 += xv * col[4];
      s5 += xv * col[5];
      s6 += xv * col[6];
      s7 += xv * col[7];
    }
    double* o = out + g * 8;
    o[0] = s0;
    o[1] = s1;
    o[2] = s2;
    o[3] = s3;
    o[4] = s4;
    o[5] = s5;
    o[6] = s6;
    o[7] = s7;
  }
}

#ifdef ESIM_X86_DISPATCH

/// AVX2 variant: two groups (16 rows) per pass = four independent ymm
/// accumulator chains, enough to cover the vaddpd latency. One row per
/// lane; each lane performs the exact scalar operation sequence.
__attribute__((target("avx2"))) void matvec_avx2(const double* pk,
                                                 std::size_t groups,
                                                 std::size_t n,
                                                 const double* x,
                                                 double* out) {
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const double* a = pk + g * 8 * n;
    const double* b = a + 8 * n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d b0 = _mm256_setzero_pd();
    __m256d b1 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m256d xv = _mm256_broadcast_sd(x + p);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8)));
      a1 = _mm256_add_pd(a1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8 + 4)));
      b0 = _mm256_add_pd(b0, _mm256_mul_pd(xv, _mm256_loadu_pd(b + p * 8)));
      b1 = _mm256_add_pd(b1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(b + p * 8 + 4)));
    }
    _mm256_storeu_pd(out + g * 8, a0);
    _mm256_storeu_pd(out + g * 8 + 4, a1);
    _mm256_storeu_pd(out + g * 8 + 8, b0);
    _mm256_storeu_pd(out + g * 8 + 12, b1);
  }
  if (g < groups) {
    const double* a = pk + g * 8 * n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m256d xv = _mm256_broadcast_sd(x + p);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8)));
      a1 = _mm256_add_pd(a1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8 + 4)));
    }
    _mm256_storeu_pd(out + g * 8, a0);
    _mm256_storeu_pd(out + g * 8 + 4, a1);
  }
}

/// AVX-512 variant: four groups (32 rows) per pass = four independent
/// zmm accumulator chains. Note: no vfmadd — mul and add stay separate
/// so every lane rounds twice, exactly like the reference.
__attribute__((target("avx512f"))) void matvec_avx512(const double* pk,
                                                      std::size_t groups,
                                                      std::size_t n,
                                                      const double* x,
                                                      double* out) {
  std::size_t g = 0;
  for (; g + 4 <= groups; g += 4) {
    const double* a = pk + g * 8 * n;
    const double* b = a + 8 * n;
    const double* c = b + 8 * n;
    const double* d = c + 8 * n;
    __m512d sa = _mm512_setzero_pd();
    __m512d sb = _mm512_setzero_pd();
    __m512d sc = _mm512_setzero_pd();
    __m512d sd = _mm512_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m512d xv = _mm512_set1_pd(x[p]);
      sa = _mm512_add_pd(sa, _mm512_mul_pd(xv, _mm512_loadu_pd(a + p * 8)));
      sb = _mm512_add_pd(sb, _mm512_mul_pd(xv, _mm512_loadu_pd(b + p * 8)));
      sc = _mm512_add_pd(sc, _mm512_mul_pd(xv, _mm512_loadu_pd(c + p * 8)));
      sd = _mm512_add_pd(sd, _mm512_mul_pd(xv, _mm512_loadu_pd(d + p * 8)));
    }
    _mm512_storeu_pd(out + g * 8, sa);
    _mm512_storeu_pd(out + g * 8 + 8, sb);
    _mm512_storeu_pd(out + g * 8 + 16, sc);
    _mm512_storeu_pd(out + g * 8 + 24, sd);
  }
  for (; g < groups; ++g) {
    const double* a = pk + g * 8 * n;
    __m512d sa = _mm512_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m512d xv = _mm512_set1_pd(x[p]);
      sa = _mm512_add_pd(sa, _mm512_mul_pd(xv, _mm512_loadu_pd(a + p * 8)));
    }
    _mm512_storeu_pd(out + g * 8, sa);
  }
}

/// Batched matmul, AVX2: four lanes share every weight load. The 4x8
/// (lane x row) tile keeps eight independent ymm accumulator chains —
/// two per lane — so one pass over a weight group serves four input
/// rows. Per (lane, row) the arithmetic is the exact matvec_avx2
/// sequence, so results stay bit-identical to the single-lane kernel.
__attribute__((target("avx2"))) void matmul_avx2(
    const double* pk, std::size_t groups, std::size_t n, const double* x,
    std::size_t ldx, std::size_t lanes, double* out, std::size_t ldo) {
  std::size_t lane = 0;
  for (; lane + 4 <= lanes; lane += 4) {
    const double* x0 = x + lane * ldx;
    const double* x1 = x0 + ldx;
    const double* x2 = x1 + ldx;
    const double* x3 = x2 + ldx;
    double* o0 = out + lane * ldo;
    double* o1 = o0 + ldo;
    double* o2 = o1 + ldo;
    double* o3 = o2 + ldo;
    for (std::size_t g = 0; g < groups; ++g) {
      const double* w = pk + g * 8 * n;
      __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
      __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
      __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
      __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < n; ++p) {
        const __m256d w0 = _mm256_loadu_pd(w + p * 8);
        const __m256d w1 = _mm256_loadu_pd(w + p * 8 + 4);
        __m256d xv = _mm256_broadcast_sd(x0 + p);
        a00 = _mm256_add_pd(a00, _mm256_mul_pd(xv, w0));
        a01 = _mm256_add_pd(a01, _mm256_mul_pd(xv, w1));
        xv = _mm256_broadcast_sd(x1 + p);
        a10 = _mm256_add_pd(a10, _mm256_mul_pd(xv, w0));
        a11 = _mm256_add_pd(a11, _mm256_mul_pd(xv, w1));
        xv = _mm256_broadcast_sd(x2 + p);
        a20 = _mm256_add_pd(a20, _mm256_mul_pd(xv, w0));
        a21 = _mm256_add_pd(a21, _mm256_mul_pd(xv, w1));
        xv = _mm256_broadcast_sd(x3 + p);
        a30 = _mm256_add_pd(a30, _mm256_mul_pd(xv, w0));
        a31 = _mm256_add_pd(a31, _mm256_mul_pd(xv, w1));
      }
      _mm256_storeu_pd(o0 + g * 8, a00);
      _mm256_storeu_pd(o0 + g * 8 + 4, a01);
      _mm256_storeu_pd(o1 + g * 8, a10);
      _mm256_storeu_pd(o1 + g * 8 + 4, a11);
      _mm256_storeu_pd(o2 + g * 8, a20);
      _mm256_storeu_pd(o2 + g * 8 + 4, a21);
      _mm256_storeu_pd(o3 + g * 8, a30);
      _mm256_storeu_pd(o3 + g * 8 + 4, a31);
    }
  }
  for (; lane < lanes; ++lane) {
    matvec_avx2(pk, groups, n, x + lane * ldx, out + lane * ldo);
  }
}

/// Batched matmul, AVX-512: eight lanes share every weight load (one zmm
/// covers a full 8-row group column), eight independent zmm chains.
__attribute__((target("avx512f"))) void matmul_avx512(
    const double* pk, std::size_t groups, std::size_t n, const double* x,
    std::size_t ldx, std::size_t lanes, double* out, std::size_t ldo) {
  std::size_t lane = 0;
  for (; lane + 8 <= lanes; lane += 8) {
    const double* xr[8];
    for (std::size_t l = 0; l < 8; ++l) xr[l] = x + (lane + l) * ldx;
    for (std::size_t g = 0; g < groups; ++g) {
      const double* w = pk + g * 8 * n;
      __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
      __m512d a2 = _mm512_setzero_pd(), a3 = _mm512_setzero_pd();
      __m512d a4 = _mm512_setzero_pd(), a5 = _mm512_setzero_pd();
      __m512d a6 = _mm512_setzero_pd(), a7 = _mm512_setzero_pd();
      for (std::size_t p = 0; p < n; ++p) {
        const __m512d wv = _mm512_loadu_pd(w + p * 8);
        a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_set1_pd(xr[0][p]), wv));
        a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_set1_pd(xr[1][p]), wv));
        a2 = _mm512_add_pd(a2, _mm512_mul_pd(_mm512_set1_pd(xr[2][p]), wv));
        a3 = _mm512_add_pd(a3, _mm512_mul_pd(_mm512_set1_pd(xr[3][p]), wv));
        a4 = _mm512_add_pd(a4, _mm512_mul_pd(_mm512_set1_pd(xr[4][p]), wv));
        a5 = _mm512_add_pd(a5, _mm512_mul_pd(_mm512_set1_pd(xr[5][p]), wv));
        a6 = _mm512_add_pd(a6, _mm512_mul_pd(_mm512_set1_pd(xr[6][p]), wv));
        a7 = _mm512_add_pd(a7, _mm512_mul_pd(_mm512_set1_pd(xr[7][p]), wv));
      }
      _mm512_storeu_pd(out + lane * ldo + g * 8, a0);
      _mm512_storeu_pd(out + (lane + 1) * ldo + g * 8, a1);
      _mm512_storeu_pd(out + (lane + 2) * ldo + g * 8, a2);
      _mm512_storeu_pd(out + (lane + 3) * ldo + g * 8, a3);
      _mm512_storeu_pd(out + (lane + 4) * ldo + g * 8, a4);
      _mm512_storeu_pd(out + (lane + 5) * ldo + g * 8, a5);
      _mm512_storeu_pd(out + (lane + 6) * ldo + g * 8, a6);
      _mm512_storeu_pd(out + (lane + 7) * ldo + g * 8, a7);
    }
  }
  for (; lane < lanes; ++lane) {
    matvec_avx512(pk, groups, n, x + lane * ldx, out + lane * ldo);
  }
}

// ---- Vector activation twins (see ml/activations.h) -------------------
//
// exp4/sigmoid4/tanh4 replay exp_act/sigmoid/tanh_act four elements at a
// time with the exact same IEEE op sequence (same reduction constants,
// same Horner order, plain mul/add under -ffp-contract=off, nearest-even
// rounding for the exponent split), so every element is bit-identical to
// the scalar call. Where the scalar code branches, the vector code
// computes both sides and blends — the selected lane value is the same.

__attribute__((target("avx2"))) inline __m256d exp4(__m256d x) {
  x = _mm256_min_pd(x, _mm256_set1_pd(kExpClamp));
  const __m256d under =
      _mm256_cmp_pd(x, _mm256_set1_pd(-kExpClamp), _CMP_LT_OQ);
  const __m256d k = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kExpLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x, _mm256_mul_pd(k, _mm256_set1_pd(kExpLn2Hi))),
      _mm256_mul_pd(k, _mm256_set1_pd(kExpLn2Lo)));
  // Estrin tree, the exact association of the scalar exp_act.
  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d r4 = _mm256_mul_pd(r2, r2);
  const __m256d r8 = _mm256_mul_pd(r4, r4);
  const __m256d q0 = _mm256_add_pd(_mm256_set1_pd(1.0), r);
  const __m256d q1 = _mm256_add_pd(
      _mm256_set1_pd(0.5), _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 6.0)));
  const __m256d q2 =
      _mm256_add_pd(_mm256_set1_pd(1.0 / 24.0),
                    _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 120.0)));
  const __m256d q3 =
      _mm256_add_pd(_mm256_set1_pd(1.0 / 720.0),
                    _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 5040.0)));
  const __m256d q4 =
      _mm256_add_pd(_mm256_set1_pd(1.0 / 40320.0),
                    _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 362880.0)));
  const __m256d q5 =
      _mm256_add_pd(_mm256_set1_pd(1.0 / 3628800.0),
                    _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 39916800.0)));
  const __m256d q6 =
      _mm256_add_pd(_mm256_set1_pd(1.0 / 479001600.0),
                    _mm256_mul_pd(r, _mm256_set1_pd(1.0 / 6227020800.0)));
  const __m256d lo = _mm256_add_pd(
      _mm256_add_pd(q0, _mm256_mul_pd(r2, q1)),
      _mm256_mul_pd(r4, _mm256_add_pd(q2, _mm256_mul_pd(r2, q3))));
  const __m256d hi = _mm256_add_pd(_mm256_add_pd(q4, _mm256_mul_pd(r2, q5)),
                                   _mm256_mul_pd(r4, q6));
  const __m256d p = _mm256_add_pd(lo, _mm256_mul_pd(r8, hi));
  // 2^k from exponent bits; k is integral and |k| <= 1022 after the
  // clamp, so the int32 hop is exact. Out-of-range lanes compute garbage
  // here and are masked to the scalar result (0.0) below.
  const __m128i ki = _mm256_cvtpd_epi32(k);
  const __m256i ke = _mm256_add_epi64(_mm256_cvtepi32_epi64(ki),
                                      _mm256_set1_epi64x(1023));
  const __m256d s = _mm256_castsi256_pd(_mm256_slli_epi64(ke, 52));
  return _mm256_andnot_pd(under, _mm256_mul_pd(p, s));
}

__attribute__((target("avx2"))) inline __m256d sigmoid4(__m256d x) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d a = _mm256_andnot_pd(sign, x);
  const __m256d e = exp4(_mm256_xor_pd(a, sign));  // exp(-|x|)
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  const __m256d num = _mm256_blendv_pd(one, e, neg);
  return _mm256_div_pd(num, _mm256_add_pd(one, e));
}

__attribute__((target("avx2"))) inline __m256d tanh4(__m256d x) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d a = _mm256_andnot_pd(sign, x);
  const __m256d z = _mm256_mul_pd(x, x);
  __m256d p = _mm256_set1_pd(21844.0 / 6081075.0);
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(-1382.0 / 155925.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(62.0 / 2835.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(-17.0 / 315.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(2.0 / 15.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(-1.0 / 3.0));
  const __m256d small =
      _mm256_add_pd(x, _mm256_mul_pd(_mm256_mul_pd(x, z), p));
  const __m256d e = exp4(_mm256_mul_pd(_mm256_set1_pd(-2.0), a));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d r =
      _mm256_div_pd(_mm256_sub_pd(one, e), _mm256_add_pd(one, e));
  const __m256d big = _mm256_or_pd(r, _mm256_and_pd(x, sign));
  const __m256d use_small =
      _mm256_cmp_pd(a, _mm256_set1_pd(kTanhSmall), _CMP_LT_OQ);
  return _mm256_blendv_pd(big, small, use_small);
}

#endif  // ESIM_X86_DISPATCH

using MatvecFn = void (*)(const double*, std::size_t, std::size_t,
                          const double*, double*);

/// `lanes` input rows (stride ldx) against one packed weight block;
/// output rows at stride ldo. The batched analogue of MatvecFn: weights
/// stream once per lane tile instead of once per lane.
using MatmulFn = void (*)(const double* pk, std::size_t groups,
                          std::size_t n, const double* x, std::size_t ldx,
                          std::size_t lanes, double* out, std::size_t ldo);

/// Portable batched fallback: no cross-lane amortization, one matvec per
/// lane (bit-identical by construction).
void matmul_scalar(const double* pk, std::size_t groups, std::size_t n,
                   const double* x, std::size_t ldx, std::size_t lanes,
                   double* out, std::size_t ldo) {
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    matvec_scalar(pk, groups, n, x + lane * ldx, out + lane * ldo);
  }
}

/// Picks the widest kernel the CPU supports; every variant is
/// bit-identical, so this is purely a throughput decision. AVX2 is
/// preferred over AVX-512 by default: the 512-bit license downclock on
/// server parts slows the scalar sigmoid/tanh pass that shares the step,
/// costing more than the wider vectors win. ESIM_INFERENCE_ISA
/// (scalar|avx2|avx512) overrides, mainly so tests and benches can pin a
/// variant.
MatvecFn select_matvec() {
#ifdef ESIM_X86_DISPATCH
  const char* force = std::getenv("ESIM_INFERENCE_ISA");
  if (force != nullptr && force[0] != '\0') {
    const std::string_view v{force};
    if (v == "avx512" && __builtin_cpu_supports("avx512f")) {
      return matvec_avx512;
    }
    if (v == "avx2" && __builtin_cpu_supports("avx2")) return matvec_avx2;
    return matvec_scalar;
  }
  if (__builtin_cpu_supports("avx2")) return matvec_avx2;
  if (__builtin_cpu_supports("avx512f")) return matvec_avx512;
#endif
  return matvec_scalar;
}

/// Batched-kernel selection mirrors select_matvec (same env override,
/// same AVX2-first policy): the batched tiles only widen the lane
/// dimension, the per-lane arithmetic is the matching matvec variant.
MatmulFn select_matmul() {
#ifdef ESIM_X86_DISPATCH
  const char* force = std::getenv("ESIM_INFERENCE_ISA");
  if (force != nullptr && force[0] != '\0') {
    const std::string_view v{force};
    if (v == "avx512" && __builtin_cpu_supports("avx512f")) {
      return matmul_avx512;
    }
    if (v == "avx2" && __builtin_cpu_supports("avx2")) return matmul_avx2;
    return matmul_scalar;
  }
  if (__builtin_cpu_supports("avx2")) return matmul_avx2;
  if (__builtin_cpu_supports("avx512f")) return matmul_avx512;
#endif
  return matmul_scalar;
}

const MatvecFn g_matvec = select_matvec();
const MatmulFn g_matmul = select_matmul();

// ---- Gate combine + state advance, one lane ---------------------------
//
// The element-wise pass that turns combined gate rows into the next
// h/c: reference op order (see InferenceSession::combine_lstm). The
// scalar form is the twin of the AVX2 pass below — sigmoid/tanh_act are
// bit-identical between the two by construction — so the dispatch is,
// like the matmuls, purely a throughput decision.

void combine_lstm_scalar(const double* b, double* gi, const double* gh,
                         double* h, double* c, std::size_t H) {
  const std::size_t G = 4 * H;
  for (std::size_t j = 0; j < G; ++j) gi[j] = gi[j] + gh[j] + b[j];
  for (std::size_t u = 0; u < H; ++u) {
    const double gv = sigmoid(gi[u]);
    const double gf = sigmoid(gi[H + u]);
    const double gg = tanh_act(gi[2 * H + u]);
    const double go = sigmoid(gi[3 * H + u]);
    const double cv = gf * c[u] + gv * gg;
    const double tc = tanh_act(cv);
    c[u] = cv;
    h[u] = go * tc;
  }
}

void combine_gru_scalar(const double* bi, const double* bh, double* gi,
                        double* gh, double* h, std::size_t H) {
  const std::size_t G = 3 * H;
  for (std::size_t j = 0; j < G; ++j) {
    gi[j] += bi[j];
    gh[j] += bh[j];
  }
  for (std::size_t u = 0; u < H; ++u) {
    const double rv = sigmoid(gi[u] + gh[u]);
    const double zv = sigmoid(gi[H + u] + gh[H + u]);
    const double hl = gh[2 * H + u];
    const double nv = tanh_act(gi[2 * H + u] + rv * hl);
    h[u] = (1.0 - zv) * nv + zv * h[u];
  }
}

#ifdef ESIM_X86_DISPATCH

__attribute__((target("avx2"))) void combine_lstm_avx2(
    const double* b, double* gi, const double* gh, double* h, double* c,
    std::size_t H) {
  const std::size_t G = 4 * H;
  std::size_t j = 0;
  for (; j + 4 <= G; j += 4) {
    const __m256d v = _mm256_add_pd(
        _mm256_add_pd(_mm256_loadu_pd(gi + j), _mm256_loadu_pd(gh + j)),
        _mm256_loadu_pd(b + j));
    _mm256_storeu_pd(gi + j, v);
  }
  for (; j < G; ++j) gi[j] = gi[j] + gh[j] + b[j];
  std::size_t u = 0;
  for (; u + 4 <= H; u += 4) {
    const __m256d gv = sigmoid4(_mm256_loadu_pd(gi + u));
    const __m256d gf = sigmoid4(_mm256_loadu_pd(gi + H + u));
    const __m256d gg = tanh4(_mm256_loadu_pd(gi + 2 * H + u));
    const __m256d go = sigmoid4(_mm256_loadu_pd(gi + 3 * H + u));
    const __m256d cv = _mm256_add_pd(
        _mm256_mul_pd(gf, _mm256_loadu_pd(c + u)), _mm256_mul_pd(gv, gg));
    const __m256d tc = tanh4(cv);
    _mm256_storeu_pd(c + u, cv);
    _mm256_storeu_pd(h + u, _mm256_mul_pd(go, tc));
  }
  for (; u < H; ++u) {
    const double gv = sigmoid(gi[u]);
    const double gf = sigmoid(gi[H + u]);
    const double gg = tanh_act(gi[2 * H + u]);
    const double go = sigmoid(gi[3 * H + u]);
    const double cv = gf * c[u] + gv * gg;
    const double tc = tanh_act(cv);
    c[u] = cv;
    h[u] = go * tc;
  }
}

__attribute__((target("avx2"))) void combine_gru_avx2(
    const double* bi, const double* bh, double* gi, double* gh, double* h,
    std::size_t H) {
  const std::size_t G = 3 * H;
  std::size_t j = 0;
  for (; j + 4 <= G; j += 4) {
    _mm256_storeu_pd(gi + j, _mm256_add_pd(_mm256_loadu_pd(gi + j),
                                           _mm256_loadu_pd(bi + j)));
    _mm256_storeu_pd(gh + j, _mm256_add_pd(_mm256_loadu_pd(gh + j),
                                           _mm256_loadu_pd(bh + j)));
  }
  for (; j < G; ++j) {
    gi[j] += bi[j];
    gh[j] += bh[j];
  }
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t u = 0;
  for (; u + 4 <= H; u += 4) {
    const __m256d rv = sigmoid4(_mm256_add_pd(_mm256_loadu_pd(gi + u),
                                              _mm256_loadu_pd(gh + u)));
    const __m256d zv =
        sigmoid4(_mm256_add_pd(_mm256_loadu_pd(gi + H + u),
                               _mm256_loadu_pd(gh + H + u)));
    const __m256d hl = _mm256_loadu_pd(gh + 2 * H + u);
    const __m256d nv = tanh4(_mm256_add_pd(_mm256_loadu_pd(gi + 2 * H + u),
                                           _mm256_mul_pd(rv, hl)));
    const __m256d hv = _mm256_loadu_pd(h + u);
    _mm256_storeu_pd(
        h + u, _mm256_add_pd(_mm256_mul_pd(_mm256_sub_pd(one, zv), nv),
                             _mm256_mul_pd(zv, hv)));
  }
  for (; u < H; ++u) {
    const double rv = sigmoid(gi[u] + gh[u]);
    const double zv = sigmoid(gi[H + u] + gh[H + u]);
    const double hl = gh[2 * H + u];
    const double nv = tanh_act(gi[2 * H + u] + rv * hl);
    h[u] = (1.0 - zv) * nv + zv * h[u];
  }
}

#endif  // ESIM_X86_DISPATCH

using CombineLstmFn = void (*)(const double*, double*, const double*,
                               double*, double*, std::size_t);
using CombineGruFn = void (*)(const double*, const double*, double*,
                              double*, double*, std::size_t);

/// The activation pass has one vector width: AVX2. A forced "scalar" ISA
/// drops to the scalar twins; AVX-512 mode reuses the AVX2 pass (results
/// are bit-identical either way, and the element-wise pass would not win
/// from 512-bit registers what the license downclock costs).
CombineLstmFn select_combine_lstm() {
#ifdef ESIM_X86_DISPATCH
  const char* force = std::getenv("ESIM_INFERENCE_ISA");
  if (force != nullptr && std::string_view{force} == "scalar") {
    return combine_lstm_scalar;
  }
  if (__builtin_cpu_supports("avx2")) return combine_lstm_avx2;
#endif
  return combine_lstm_scalar;
}

CombineGruFn select_combine_gru() {
#ifdef ESIM_X86_DISPATCH
  const char* force = std::getenv("ESIM_INFERENCE_ISA");
  if (force != nullptr && std::string_view{force} == "scalar") {
    return combine_gru_scalar;
  }
  if (__builtin_cpu_supports("avx2")) return combine_gru_avx2;
#endif
  return combine_gru_scalar;
}

const CombineLstmFn g_combine_lstm = select_combine_lstm();
const CombineGruFn g_combine_gru = select_combine_gru();

void require_shape(const Tensor* t, std::size_t rows, std::size_t cols,
                   const char* what) {
  if (t == nullptr) {
    throw std::invalid_argument(std::string{"InferenceSession: missing "} +
                                what);
  }
  if (t->rows() != rows || t->cols() != cols) {
    throw std::invalid_argument(std::string{"InferenceSession: bad shape for "} +
                                what);
  }
}

std::size_t gate_factor(TrunkKind kind) {
  return kind == TrunkKind::Lstm ? 4 : 3;
}

}  // namespace

const char* trunk_kind_name(TrunkKind kind) {
  switch (kind) {
    case TrunkKind::Lstm:
      return "lstm";
    case TrunkKind::Gru:
      return "gru";
  }
  return "?";
}

InferenceSession::InferenceSession(TrunkKind kind,
                                   const std::vector<LayerWeights>& layers,
                                   const std::vector<HeadWeights>& heads)
    : kind_{kind} {
  if (layers.empty()) {
    throw std::invalid_argument("InferenceSession: no layers");
  }
  const std::size_t G = gate_factor(kind);
  const std::size_t hidden = layers.front().w_hh != nullptr
                                 ? layers.front().w_hh->cols()
                                 : 0;
  const std::size_t input =
      layers.front().w_ih != nullptr ? layers.front().w_ih->cols() : 0;
  if (hidden == 0 || input == 0) {
    throw std::invalid_argument("InferenceSession: zero dimension");
  }
  Arch arch;
  arch.kind = kind;
  arch.input = input;
  arch.hidden = hidden;
  arch.layers = layers.size();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerWeights& lw = layers[l];
    const std::size_t in = l == 0 ? input : hidden;
    require_shape(lw.w_ih, G * hidden, in, "w_ih");
    require_shape(lw.w_hh, G * hidden, hidden, "w_hh");
    require_shape(lw.b_ih, 1, G * hidden, "b_ih");
    if (kind == TrunkKind::Gru) {
      require_shape(lw.b_hh, 1, G * hidden, "b_hh");
    } else if (lw.b_hh != nullptr) {
      throw std::invalid_argument("InferenceSession: LSTM layer with b_hh");
    }
  }
  for (const HeadWeights& hw : heads) {
    if (hw.weight == nullptr || hw.bias == nullptr) {
      throw std::invalid_argument("InferenceSession: missing head weights");
    }
    require_shape(hw.weight, hw.weight->rows(), hidden, "head weight");
    require_shape(hw.bias, 1, hw.weight->rows(), "head bias");
    arch.head_outputs.push_back(hw.weight->rows());
  }
  assign_offsets(arch);
  // Snapshot the current weight values into the owned natural buffer.
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerWeights& lw = layers[l];
    const Layer& layer = layers_[l];
    std::copy_n(lw.w_ih->data(), lw.w_ih->size(),
                weights_.data() + layer.w_ih);
    std::copy_n(lw.w_hh->data(), lw.w_hh->size(),
                weights_.data() + layer.w_hh);
    std::copy_n(lw.b_ih->data(), lw.b_ih->size(),
                weights_.data() + layer.b_ih);
    if (kind == TrunkKind::Gru) {
      std::copy_n(lw.b_hh->data(), lw.b_hh->size(),
                  weights_.data() + layer.b_hh);
    }
  }
  for (std::size_t i = 0; i < heads.size(); ++i) {
    std::copy_n(heads[i].weight->data(), heads[i].weight->size(),
                weights_.data() + heads_[i].w);
    std::copy_n(heads[i].bias->data(), heads[i].bias->size(),
                weights_.data() + heads_[i].b);
  }
  finalize_plan();
}

InferenceSession::InferenceSession(const Arch& arch) : kind_{arch.kind} {
  if (arch.input == 0 || arch.hidden == 0 || arch.layers == 0) {
    throw std::invalid_argument("InferenceSession: zero dimension");
  }
  for (const std::size_t out : arch.head_outputs) {
    if (out == 0) {
      throw std::invalid_argument("InferenceSession: zero-width head");
    }
  }
  assign_offsets(arch);
  finalize_plan();
}

void InferenceSession::assign_offsets(const Arch& arch) {
  const std::size_t G = gate_factor(arch.kind);
  input_ = arch.input;
  std::size_t off = 0;
  layers_.reserve(arch.layers);
  for (std::size_t l = 0; l < arch.layers; ++l) {
    Layer layer;
    layer.input = l == 0 ? arch.input : arch.hidden;
    layer.hidden = arch.hidden;
    layer.w_ih = off;
    off += G * arch.hidden * layer.input;
    layer.w_hh = off;
    off += G * arch.hidden * arch.hidden;
    layer.b_ih = off;
    off += G * arch.hidden;
    if (arch.kind == TrunkKind::Gru) {
      layer.b_hh = off;
      off += G * arch.hidden;
    }
    layers_.push_back(layer);
  }
  heads_.reserve(arch.head_outputs.size());
  for (const std::size_t out : arch.head_outputs) {
    Head head;
    head.out = out;
    head.w = off;
    off += out * arch.hidden;
    head.b = off;
    off += out;
    heads_.push_back(head);
  }
  weights_.assign(off, 0.0);
}

void InferenceSession::finalize_plan() {
  std::size_t state_size = 0;
  for (Layer& layer : layers_) {
    layer.h_off = state_size;
    state_size += layer.hidden;
    if (kind_ == TrunkKind::Lstm) {
      layer.c_off = state_size;
      state_size += layer.hidden;
    }
  }
  state_size_ = state_size;
  lanes_ = 1;
  state_.assign(state_size, 0.0);
  // Gate scratch: both kernels accumulate the input-side and hidden-side
  // matvec results in two G-wide blocks before combining.
  const std::size_t hidden = layers_.front().hidden;
  const std::size_t G = gate_factor(kind_) * hidden;
  const std::size_t scratch = 2 * G;
  output_size_ = 0;
  for (const Head& head : heads_) output_size_ += head.out;
  head_out_off_ = scratch;
  workspace_.assign(scratch + output_size_, 0.0);
  // Packed (8-row interleaved) copies of the gate matrices. Row counts
  // not divisible by 8 leave a tail handled by scalar dot1 off the
  // natural buffer.
  std::size_t poff = 0;
  for (Layer& layer : layers_) {
    const std::size_t full = (G / 8) * 8;
    layer.pw_ih = poff;
    poff += full * layer.input;
    layer.pw_hh = poff;
    poff += full * layer.hidden;
  }
  packed_.assign(poff, 0.0);
  repack();
}

void InferenceSession::repack() {
  const std::size_t G = gate_factor(kind_) * layers_.front().hidden;
  const std::size_t groups = G / 8;
  for (const Layer& layer : layers_) {
    const auto pack = [&](std::size_t natural, std::size_t packed,
                          std::size_t n) {
      const double* w = weights_.data() + natural;
      double* pk = packed_.data() + packed;
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t p = 0; p < n; ++p) {
          for (std::size_t r = 0; r < 8; ++r) {
            pk[g * 8 * n + p * 8 + r] = w[(g * 8 + r) * n + p];
          }
        }
      }
    };
    pack(layer.w_ih, layer.pw_ih, layer.input);
    pack(layer.w_hh, layer.pw_hh, layer.hidden);
  }
}

void InferenceSession::reset_state() {
  std::fill(state_.begin(), state_.end(), 0.0);
}

void InferenceSession::watch_weight_source(const Module& module) {
  watched_.emplace_back(&module, module.weight_version());
}

void InferenceSession::check_fresh() const {
  for (const auto& [module, version] : watched_) {
    if (module->weight_version() != version) {
      throw std::logic_error(
          "InferenceSession: stale weight snapshot — a watched source "
          "module was updated after this session was compiled; rebuild "
          "the session (MicroModel::recompile / make_inference_session)");
    }
  }
}

std::size_t InferenceSession::row_width() const {
  return heads_.empty() ? layers_.back().hidden : output_size_;
}

/// Head o: out[o] = dot(h, w row o) + b[o], matching Linear::forward
/// (matmul_nt + add_row_bias). Headless sessions copy the top hidden row.
void InferenceSession::write_heads(const double* h, double* out) const {
  const std::size_t hidden = layers_.back().hidden;
  if (heads_.empty()) {
    std::copy_n(h, hidden, out);
    return;
  }
  std::size_t k = 0;
  for (const Head& head : heads_) {
    const double* w = weights_.data() + head.w;
    const double* b = weights_.data() + head.b;
    for (std::size_t o = 0; o < head.out; ++o) {
      out[k++] = dot1(w + o * hidden, hidden, h) + b[o];
    }
  }
}

// Reference semantics (LstmLayer::step): gates = x W_ih^T + h W_hh^T + b,
// then i = sigmoid(gates[0..H)), f = sigmoid(gates[H..2H)),
// g = tanh(gates[2H..3H)), o = sigmoid(gates[3H..4H)),
// c' = f*c + i*g, h' = o*tanh(c'). All gate rows are computed before the
// state update, so reading h/c in place is safe.
//
// combine_lstm consumes one lane's input-side (gi) and hidden-side (gh)
// gate rows — writable scratch, gi is combined in place — and advances
// that lane's h/c: gi[j] = (gi[j] + gh[j]) + b[j], the same
// (matmul + add) + bias association as the reference, then the
// activations.
// The single-step members ride the same dispatched vector pass as
// predict_lanes: the scalar and AVX2 twins are bit-identical by
// construction (shared sigmoid/tanh_act polynomials, same op order), so
// the N = 1 / sequence path gets the vector throughput without forking
// numerics from the batched path.
void InferenceSession::combine_lstm(const Layer& layer, double* gi,
                                    const double* gh, std::size_t lane) {
  g_combine_lstm(weights_.data() + layer.b_ih, gi, gh,
                 lane_state(lane) + layer.h_off,
                 lane_state(lane) + layer.c_off, layer.hidden);
}

// Reference semantics (GruLayer::step): gi = x W_ih^T + b_ih,
// gh = h W_hh^T + b_hh, r = sigmoid(gi[j] + gh[j]),
// z = sigmoid(gi[H+j] + gh[H+j]), n = tanh(gi[2H+j] + r * gh[2H+j]),
// h' = (1 - z) * n + z * h. Both gate rows are bias-added in place.
void InferenceSession::combine_gru(const Layer& layer, double* gi,
                                   double* gh, std::size_t lane) {
  g_combine_gru(weights_.data() + layer.b_ih,
                weights_.data() + layer.b_hh, gi, gh,
                lane_state(lane) + layer.h_off, layer.hidden);
}

// One streaming step of one layer for one lane. `gi` (when non-null) is
// a writable row holding the precomputed input-side gate values from a
// batched matmul — exactly what the matvec below would produce — and
// `x` may then be null.
void InferenceSession::step_lstm(const Layer& layer, const double* x,
                                 double* gi, std::size_t lane) {
  const std::size_t H = layer.hidden;
  const std::size_t I = layer.input;
  const std::size_t G = 4 * H;
  const std::size_t full = (G / 8) * 8;
  const double* h = lane_state(lane) + layer.h_off;
  double* hg = workspace_.data() + G;
  if (gi == nullptr) {
    gi = workspace_.data();
    g_matvec(packed_.data() + layer.pw_ih, G / 8, I, x, gi);
    const double* wi = weights_.data() + layer.w_ih;
    for (std::size_t j = full; j < G; ++j) {
      gi[j] = dot1(wi + j * I, I, x);
    }
  }
  g_matvec(packed_.data() + layer.pw_hh, G / 8, H, h, hg);
  const double* wh = weights_.data() + layer.w_hh;
  for (std::size_t j = full; j < G; ++j) {
    hg[j] = dot1(wh + j * H, H, h);
  }
  combine_lstm(layer, gi, hg, lane);
}

void InferenceSession::step_gru(const Layer& layer, const double* x,
                                double* gi, std::size_t lane) {
  const std::size_t H = layer.hidden;
  const std::size_t I = layer.input;
  const std::size_t G = 3 * H;
  const std::size_t full = (G / 8) * 8;
  const double* h = lane_state(lane) + layer.h_off;
  double* gh = workspace_.data() + G;
  if (gi == nullptr) {
    gi = workspace_.data();
    g_matvec(packed_.data() + layer.pw_ih, G / 8, I, x, gi);
    const double* wi = weights_.data() + layer.w_ih;
    for (std::size_t j = full; j < G; ++j) {
      gi[j] = dot1(wi + j * I, I, x);
    }
  }
  g_matvec(packed_.data() + layer.pw_hh, G / 8, H, h, gh);
  const double* wh = weights_.data() + layer.w_hh;
  for (std::size_t j = full; j < G; ++j) {
    gh[j] = dot1(wh + j * H, H, h);
  }
  combine_gru(layer, gi, gh, lane);
}

std::span<const double> InferenceSession::predict(
    std::span<const double> features) {
  check_fresh();
  if (lanes_ != 1) {
    throw std::logic_error("InferenceSession: predict() requires one lane");
  }
  if (features.size() != input_) {
    throw std::invalid_argument("InferenceSession: feature width mismatch");
  }
  const double* x = features.data();
  for (const Layer& layer : layers_) {
    if (kind_ == TrunkKind::Lstm) {
      step_lstm(layer, x, nullptr, 0);
    } else {
      step_gru(layer, x, nullptr, 0);
    }
    x = state_.data() + layer.h_off;  // feeds the layer above
  }
  const Layer& top = layers_.back();
  const double* h = state_.data() + top.h_off;
  if (heads_.empty()) {
    return {h, top.hidden};
  }
  double* out = workspace_.data() + head_out_off_;
  write_heads(h, out);
  return {out, output_size_};
}

void InferenceSession::reserve_batch(std::size_t max_n) {
  if (max_n <= batch_capacity_) return;
  const std::size_t hidden = layers_.front().hidden;
  const std::size_t G = gate_factor(kind_) * hidden;
  batch_x_.assign(max_n * hidden, 0.0);
  // One 2G row per step/lane: [0, G) input-side gates, [G, 2G) the
  // hidden-side gates of lanes mode (sequence mode leaves them unused —
  // its recurrence runs through the per-step workspace scratch).
  batch_gates_.assign(max_n * 2 * G, 0.0);
  batch_out_.assign(max_n * row_width(), 0.0);
  batch_capacity_ = max_n;
}

void InferenceSession::set_lane_count(std::size_t lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("InferenceSession: zero lanes");
  }
  lanes_ = lanes;
  state_.assign(lanes * state_size_, 0.0);
  reserve_batch(lanes);
}

// Sequence-mode batch: layer by layer, each layer first runs its
// input-side gate matmul over all n timesteps (one weight stream per
// batch), then replays the W_hh recurrence step by step. Evaluation
// order differs from n predict() calls but every scalar is produced by
// the identical operation sequence from identical inputs, so outputs and
// final state match bit-for-bit.
std::span<const double> InferenceSession::predict_batch(
    std::span<const double> features, std::size_t n) {
  check_fresh();
  if (lanes_ != 1) {
    throw std::logic_error(
        "InferenceSession: predict_batch() requires one lane");
  }
  if (features.size() != n * input_) {
    throw std::invalid_argument("InferenceSession: feature width mismatch");
  }
  if (n == 0) return {batch_out_.data(), 0};
  reserve_batch(n);
  const std::size_t hidden = layers_.front().hidden;
  const std::size_t G = gate_factor(kind_) * hidden;
  const std::size_t full = (G / 8) * 8;
  const std::size_t ldg = 2 * G;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // Layer 0 reads the caller's feature rows; upper layers read the
    // previous layer's per-step outputs parked in batch_x_.
    const double* X = l == 0 ? features.data() : batch_x_.data();
    const std::size_t ldx = l == 0 ? input_ : hidden;
    g_matmul(packed_.data() + layer.pw_ih, G / 8, layer.input, X, ldx, n,
             batch_gates_.data(), ldg);
    if (full < G) {
      const double* wi = weights_.data() + layer.w_ih;
      for (std::size_t t = 0; t < n; ++t) {
        double* gi = batch_gates_.data() + t * ldg;
        const double* x = X + t * ldx;
        for (std::size_t j = full; j < G; ++j) {
          gi[j] = dot1(wi + j * layer.input, layer.input, x);
        }
      }
    }
    // Recurrence: the batched rows are consumed in arrival order, and
    // this layer's h_t overwrites batch_x_ row t (safe — the batched
    // matmul above already read every input row).
    for (std::size_t t = 0; t < n; ++t) {
      double* gi = batch_gates_.data() + t * ldg;
      if (kind_ == TrunkKind::Lstm) {
        step_lstm(layer, nullptr, gi, 0);
      } else {
        step_gru(layer, nullptr, gi, 0);
      }
      std::copy_n(state_.data() + layer.h_off, hidden,
                  batch_x_.data() + t * hidden);
    }
  }
  const std::size_t width = row_width();
  for (std::size_t t = 0; t < n; ++t) {
    write_heads(batch_x_.data() + t * hidden, batch_out_.data() + t * width);
  }
  return {batch_out_.data(), n * width};
}

// Lanes mode: every lane advances one timestep; both gate matmuls batch
// across lanes, so each weight matrix streams once per call instead of
// once per lane. Per lane the arithmetic is exactly one predict() step
// on that lane's private state.
std::span<const double> InferenceSession::predict_lanes(
    std::span<const double> features) {
  check_fresh();
  if (features.size() != lanes_ * input_) {
    throw std::invalid_argument("InferenceSession: feature width mismatch");
  }
  reserve_batch(lanes_);
  const std::size_t hidden = layers_.front().hidden;
  const std::size_t G = gate_factor(kind_) * hidden;
  const std::size_t full = (G / 8) * 8;
  const std::size_t ldg = 2 * G;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // Layer l > 0 reads layer l-1's freshly written h, striding the
    // per-lane state blocks.
    const double* X =
        l == 0 ? features.data() : state_.data() + layers_[l - 1].h_off;
    const std::size_t ldx = l == 0 ? input_ : state_size_;
    const double* H0 = state_.data() + layer.h_off;
    g_matmul(packed_.data() + layer.pw_ih, G / 8, layer.input, X, ldx,
             lanes_, batch_gates_.data(), ldg);
    g_matmul(packed_.data() + layer.pw_hh, G / 8, layer.hidden, H0,
             state_size_, lanes_, batch_gates_.data() + G, ldg);
    if (full < G) {
      const double* wi = weights_.data() + layer.w_ih;
      const double* wh = weights_.data() + layer.w_hh;
      for (std::size_t lane = 0; lane < lanes_; ++lane) {
        double* row = batch_gates_.data() + lane * ldg;
        const double* x = X + lane * ldx;
        const double* h = H0 + lane * state_size_;
        for (std::size_t j = full; j < G; ++j) {
          row[j] = dot1(wi + j * layer.input, layer.input, x);
          row[G + j] = dot1(wh + j * layer.hidden, layer.hidden, h);
        }
      }
    }
    // Per-lane gate combine through the dispatched vector pass: with the
    // matmuls batched above, this element-wise sweep over the flat gate
    // buffer is what remains of the per-packet cost, and the AVX2
    // activation twins cut it ~4x while staying bit-identical to the
    // scalar step (see select_combine_lstm).
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      double* row = batch_gates_.data() + lane * ldg;
      if (kind_ == TrunkKind::Lstm) {
        g_combine_lstm(weights_.data() + layer.b_ih, row, row + G,
                       lane_state(lane) + layer.h_off,
                       lane_state(lane) + layer.c_off, layer.hidden);
      } else {
        g_combine_gru(weights_.data() + layer.b_ih,
                      weights_.data() + layer.b_hh, row, row + G,
                      lane_state(lane) + layer.h_off, layer.hidden);
      }
    }
  }
  const Layer& top = layers_.back();
  const std::size_t width = row_width();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    write_heads(lane_state(lane) + top.h_off,
                batch_out_.data() + lane * width);
  }
  return {batch_out_.data(), lanes_ * width};
}

std::vector<WeightView> InferenceSession::weight_views(
    const std::string& trunk_prefix,
    const std::vector<std::string>& head_names) {
  if (head_names.size() != heads_.size()) {
    throw std::invalid_argument("InferenceSession: head name count mismatch");
  }
  const std::size_t G = gate_factor(kind_);
  std::vector<WeightView> views;
  views.reserve(layers_.size() * 4 + heads_.size() * 2);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::string prefix = trunk_prefix + "l" + std::to_string(l) + ".";
    double* base = weights_.data();
    views.push_back(
        {prefix + "w_ih", G * layer.hidden, layer.input, base + layer.w_ih});
    views.push_back(
        {prefix + "w_hh", G * layer.hidden, layer.hidden, base + layer.w_hh});
    if (kind_ == TrunkKind::Lstm) {
      views.push_back({prefix + "b", 1, G * layer.hidden, base + layer.b_ih});
    } else {
      views.push_back(
          {prefix + "b_ih", 1, G * layer.hidden, base + layer.b_ih});
      views.push_back(
          {prefix + "b_hh", 1, G * layer.hidden, base + layer.b_hh});
    }
  }
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    const Head& head = heads_[i];
    double* base = weights_.data();
    views.push_back({head_names[i] + ".w", head.out, layers_.back().hidden,
                     base + head.w});
    views.push_back({head_names[i] + ".b", 1, head.out, base + head.b});
  }
  return views;
}

}  // namespace esim::ml
