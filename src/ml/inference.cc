// Fused inference kernels. Bit-identity rationale (see inference.h): the
// naive matmul_nt inner loop is bound by its serial addsd dependency
// chain, not multiply throughput. The kernels here compute many gate
// rows at once — each row's dot product still sums p = 0..n-1 in exactly
// the reference order, so every result matches the reference to the last
// bit, but the rows form independent accumulator chains that fill the
// FPU pipeline. finalize_plan() packs consecutive weight rows in groups
// of eight (column-interleaved: pk[p*8 + r] = w[r][p]) so the SIMD
// variants can load one column of eight rows as contiguous vectors. The
// AVX2/AVX-512 paths keep one row per vector lane; lane arithmetic is
// the same IEEE mul-then-add as the scalar code (this file is compiled
// with -ffp-contract=off, and the AVX2 clone does not enable FMA, so no
// fused multiply-add can change the rounding).
#include "ml/inference.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "ml/activations.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ESIM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace esim::ml {
namespace {

/// Single-row dot with the reference summation order.
inline double dot1(const double* w, std::size_t n, const double* x) {
  double s = 0.0;
  for (std::size_t p = 0; p < n; ++p) s += x[p] * w[p];
  return s;
}

/// matvec over `groups` packed 8-row groups: out[g*8 + r] = dot(row, x).
/// Portable fallback — eight independent scalar chains per group.
void matvec_scalar(const double* pk, std::size_t groups, std::size_t n,
                   const double* x, double* out) {
  for (std::size_t g = 0; g < groups; ++g) {
    const double* w = pk + g * 8 * n;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const double xv = x[p];
      const double* col = w + p * 8;
      s0 += xv * col[0];
      s1 += xv * col[1];
      s2 += xv * col[2];
      s3 += xv * col[3];
      s4 += xv * col[4];
      s5 += xv * col[5];
      s6 += xv * col[6];
      s7 += xv * col[7];
    }
    double* o = out + g * 8;
    o[0] = s0;
    o[1] = s1;
    o[2] = s2;
    o[3] = s3;
    o[4] = s4;
    o[5] = s5;
    o[6] = s6;
    o[7] = s7;
  }
}

#ifdef ESIM_X86_DISPATCH

/// AVX2 variant: two groups (16 rows) per pass = four independent ymm
/// accumulator chains, enough to cover the vaddpd latency. One row per
/// lane; each lane performs the exact scalar operation sequence.
__attribute__((target("avx2"))) void matvec_avx2(const double* pk,
                                                 std::size_t groups,
                                                 std::size_t n,
                                                 const double* x,
                                                 double* out) {
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const double* a = pk + g * 8 * n;
    const double* b = a + 8 * n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d b0 = _mm256_setzero_pd();
    __m256d b1 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m256d xv = _mm256_broadcast_sd(x + p);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8)));
      a1 = _mm256_add_pd(a1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8 + 4)));
      b0 = _mm256_add_pd(b0, _mm256_mul_pd(xv, _mm256_loadu_pd(b + p * 8)));
      b1 = _mm256_add_pd(b1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(b + p * 8 + 4)));
    }
    _mm256_storeu_pd(out + g * 8, a0);
    _mm256_storeu_pd(out + g * 8 + 4, a1);
    _mm256_storeu_pd(out + g * 8 + 8, b0);
    _mm256_storeu_pd(out + g * 8 + 12, b1);
  }
  if (g < groups) {
    const double* a = pk + g * 8 * n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m256d xv = _mm256_broadcast_sd(x + p);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8)));
      a1 = _mm256_add_pd(a1,
                         _mm256_mul_pd(xv, _mm256_loadu_pd(a + p * 8 + 4)));
    }
    _mm256_storeu_pd(out + g * 8, a0);
    _mm256_storeu_pd(out + g * 8 + 4, a1);
  }
}

/// AVX-512 variant: four groups (32 rows) per pass = four independent
/// zmm accumulator chains. Note: no vfmadd — mul and add stay separate
/// so every lane rounds twice, exactly like the reference.
__attribute__((target("avx512f"))) void matvec_avx512(const double* pk,
                                                      std::size_t groups,
                                                      std::size_t n,
                                                      const double* x,
                                                      double* out) {
  std::size_t g = 0;
  for (; g + 4 <= groups; g += 4) {
    const double* a = pk + g * 8 * n;
    const double* b = a + 8 * n;
    const double* c = b + 8 * n;
    const double* d = c + 8 * n;
    __m512d sa = _mm512_setzero_pd();
    __m512d sb = _mm512_setzero_pd();
    __m512d sc = _mm512_setzero_pd();
    __m512d sd = _mm512_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m512d xv = _mm512_set1_pd(x[p]);
      sa = _mm512_add_pd(sa, _mm512_mul_pd(xv, _mm512_loadu_pd(a + p * 8)));
      sb = _mm512_add_pd(sb, _mm512_mul_pd(xv, _mm512_loadu_pd(b + p * 8)));
      sc = _mm512_add_pd(sc, _mm512_mul_pd(xv, _mm512_loadu_pd(c + p * 8)));
      sd = _mm512_add_pd(sd, _mm512_mul_pd(xv, _mm512_loadu_pd(d + p * 8)));
    }
    _mm512_storeu_pd(out + g * 8, sa);
    _mm512_storeu_pd(out + g * 8 + 8, sb);
    _mm512_storeu_pd(out + g * 8 + 16, sc);
    _mm512_storeu_pd(out + g * 8 + 24, sd);
  }
  for (; g < groups; ++g) {
    const double* a = pk + g * 8 * n;
    __m512d sa = _mm512_setzero_pd();
    for (std::size_t p = 0; p < n; ++p) {
      const __m512d xv = _mm512_set1_pd(x[p]);
      sa = _mm512_add_pd(sa, _mm512_mul_pd(xv, _mm512_loadu_pd(a + p * 8)));
    }
    _mm512_storeu_pd(out + g * 8, sa);
  }
}

#endif  // ESIM_X86_DISPATCH

using MatvecFn = void (*)(const double*, std::size_t, std::size_t,
                          const double*, double*);

/// Picks the widest kernel the CPU supports; every variant is
/// bit-identical, so this is purely a throughput decision. AVX2 is
/// preferred over AVX-512 by default: the 512-bit license downclock on
/// server parts slows the scalar sigmoid/tanh pass that shares the step,
/// costing more than the wider vectors win. ESIM_INFERENCE_ISA
/// (scalar|avx2|avx512) overrides, mainly so tests and benches can pin a
/// variant.
MatvecFn select_matvec() {
#ifdef ESIM_X86_DISPATCH
  const char* force = std::getenv("ESIM_INFERENCE_ISA");
  if (force != nullptr && force[0] != '\0') {
    const std::string_view v{force};
    if (v == "avx512" && __builtin_cpu_supports("avx512f")) {
      return matvec_avx512;
    }
    if (v == "avx2" && __builtin_cpu_supports("avx2")) return matvec_avx2;
    return matvec_scalar;
  }
  if (__builtin_cpu_supports("avx2")) return matvec_avx2;
  if (__builtin_cpu_supports("avx512f")) return matvec_avx512;
#endif
  return matvec_scalar;
}

const MatvecFn g_matvec = select_matvec();

void require_shape(const Tensor* t, std::size_t rows, std::size_t cols,
                   const char* what) {
  if (t == nullptr) {
    throw std::invalid_argument(std::string{"InferenceSession: missing "} +
                                what);
  }
  if (t->rows() != rows || t->cols() != cols) {
    throw std::invalid_argument(std::string{"InferenceSession: bad shape for "} +
                                what);
  }
}

std::size_t gate_factor(TrunkKind kind) {
  return kind == TrunkKind::Lstm ? 4 : 3;
}

}  // namespace

const char* trunk_kind_name(TrunkKind kind) {
  switch (kind) {
    case TrunkKind::Lstm:
      return "lstm";
    case TrunkKind::Gru:
      return "gru";
  }
  return "?";
}

InferenceSession::InferenceSession(TrunkKind kind,
                                   const std::vector<LayerWeights>& layers,
                                   const std::vector<HeadWeights>& heads)
    : kind_{kind} {
  if (layers.empty()) {
    throw std::invalid_argument("InferenceSession: no layers");
  }
  const std::size_t G = gate_factor(kind);
  const std::size_t hidden = layers.front().w_hh != nullptr
                                 ? layers.front().w_hh->cols()
                                 : 0;
  const std::size_t input =
      layers.front().w_ih != nullptr ? layers.front().w_ih->cols() : 0;
  if (hidden == 0 || input == 0) {
    throw std::invalid_argument("InferenceSession: zero dimension");
  }
  Arch arch;
  arch.kind = kind;
  arch.input = input;
  arch.hidden = hidden;
  arch.layers = layers.size();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerWeights& lw = layers[l];
    const std::size_t in = l == 0 ? input : hidden;
    require_shape(lw.w_ih, G * hidden, in, "w_ih");
    require_shape(lw.w_hh, G * hidden, hidden, "w_hh");
    require_shape(lw.b_ih, 1, G * hidden, "b_ih");
    if (kind == TrunkKind::Gru) {
      require_shape(lw.b_hh, 1, G * hidden, "b_hh");
    } else if (lw.b_hh != nullptr) {
      throw std::invalid_argument("InferenceSession: LSTM layer with b_hh");
    }
  }
  for (const HeadWeights& hw : heads) {
    if (hw.weight == nullptr || hw.bias == nullptr) {
      throw std::invalid_argument("InferenceSession: missing head weights");
    }
    require_shape(hw.weight, hw.weight->rows(), hidden, "head weight");
    require_shape(hw.bias, 1, hw.weight->rows(), "head bias");
    arch.head_outputs.push_back(hw.weight->rows());
  }
  assign_offsets(arch);
  // Snapshot the current weight values into the owned natural buffer.
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerWeights& lw = layers[l];
    const Layer& layer = layers_[l];
    std::copy_n(lw.w_ih->data(), lw.w_ih->size(),
                weights_.data() + layer.w_ih);
    std::copy_n(lw.w_hh->data(), lw.w_hh->size(),
                weights_.data() + layer.w_hh);
    std::copy_n(lw.b_ih->data(), lw.b_ih->size(),
                weights_.data() + layer.b_ih);
    if (kind == TrunkKind::Gru) {
      std::copy_n(lw.b_hh->data(), lw.b_hh->size(),
                  weights_.data() + layer.b_hh);
    }
  }
  for (std::size_t i = 0; i < heads.size(); ++i) {
    std::copy_n(heads[i].weight->data(), heads[i].weight->size(),
                weights_.data() + heads_[i].w);
    std::copy_n(heads[i].bias->data(), heads[i].bias->size(),
                weights_.data() + heads_[i].b);
  }
  finalize_plan();
}

InferenceSession::InferenceSession(const Arch& arch) : kind_{arch.kind} {
  if (arch.input == 0 || arch.hidden == 0 || arch.layers == 0) {
    throw std::invalid_argument("InferenceSession: zero dimension");
  }
  for (const std::size_t out : arch.head_outputs) {
    if (out == 0) {
      throw std::invalid_argument("InferenceSession: zero-width head");
    }
  }
  assign_offsets(arch);
  finalize_plan();
}

void InferenceSession::assign_offsets(const Arch& arch) {
  const std::size_t G = gate_factor(arch.kind);
  input_ = arch.input;
  std::size_t off = 0;
  layers_.reserve(arch.layers);
  for (std::size_t l = 0; l < arch.layers; ++l) {
    Layer layer;
    layer.input = l == 0 ? arch.input : arch.hidden;
    layer.hidden = arch.hidden;
    layer.w_ih = off;
    off += G * arch.hidden * layer.input;
    layer.w_hh = off;
    off += G * arch.hidden * arch.hidden;
    layer.b_ih = off;
    off += G * arch.hidden;
    if (arch.kind == TrunkKind::Gru) {
      layer.b_hh = off;
      off += G * arch.hidden;
    }
    layers_.push_back(layer);
  }
  heads_.reserve(arch.head_outputs.size());
  for (const std::size_t out : arch.head_outputs) {
    Head head;
    head.out = out;
    head.w = off;
    off += out * arch.hidden;
    head.b = off;
    off += out;
    heads_.push_back(head);
  }
  weights_.assign(off, 0.0);
}

void InferenceSession::finalize_plan() {
  std::size_t state_size = 0;
  for (Layer& layer : layers_) {
    layer.h_off = state_size;
    state_size += layer.hidden;
    if (kind_ == TrunkKind::Lstm) {
      layer.c_off = state_size;
      state_size += layer.hidden;
    }
  }
  state_.assign(state_size, 0.0);
  // Gate scratch: both kernels accumulate the input-side and hidden-side
  // matvec results in two G-wide blocks before combining.
  const std::size_t hidden = layers_.front().hidden;
  const std::size_t G = gate_factor(kind_) * hidden;
  const std::size_t scratch = 2 * G;
  output_size_ = 0;
  for (const Head& head : heads_) output_size_ += head.out;
  head_out_off_ = scratch;
  workspace_.assign(scratch + output_size_, 0.0);
  // Packed (8-row interleaved) copies of the gate matrices. Row counts
  // not divisible by 8 leave a tail handled by scalar dot1 off the
  // natural buffer.
  std::size_t poff = 0;
  for (Layer& layer : layers_) {
    const std::size_t full = (G / 8) * 8;
    layer.pw_ih = poff;
    poff += full * layer.input;
    layer.pw_hh = poff;
    poff += full * layer.hidden;
  }
  packed_.assign(poff, 0.0);
  repack();
}

void InferenceSession::repack() {
  const std::size_t G = gate_factor(kind_) * layers_.front().hidden;
  const std::size_t groups = G / 8;
  for (const Layer& layer : layers_) {
    const auto pack = [&](std::size_t natural, std::size_t packed,
                          std::size_t n) {
      const double* w = weights_.data() + natural;
      double* pk = packed_.data() + packed;
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t p = 0; p < n; ++p) {
          for (std::size_t r = 0; r < 8; ++r) {
            pk[g * 8 * n + p * 8 + r] = w[(g * 8 + r) * n + p];
          }
        }
      }
    };
    pack(layer.w_ih, layer.pw_ih, layer.input);
    pack(layer.w_hh, layer.pw_hh, layer.hidden);
  }
}

void InferenceSession::reset_state() {
  std::fill(state_.begin(), state_.end(), 0.0);
}

// Reference semantics (LstmLayer::step): gates = x W_ih^T + h W_hh^T + b,
// then i = sigmoid(gates[0..H)), f = sigmoid(gates[H..2H)),
// g = tanh(gates[2H..3H)), o = sigmoid(gates[3H..4H)),
// c' = f*c + i*g, h' = o*tanh(c'). All gate rows are computed before the
// state update, so reading h/c in place is safe.
void InferenceSession::step_lstm(const Layer& layer, const double* x) {
  const std::size_t H = layer.hidden;
  const std::size_t I = layer.input;
  const std::size_t G = 4 * H;
  const double* wi = weights_.data() + layer.w_ih;
  const double* wh = weights_.data() + layer.w_hh;
  const double* b = weights_.data() + layer.b_ih;
  double* h = state_.data() + layer.h_off;
  double* c = state_.data() + layer.c_off;
  double* gates = workspace_.data();
  double* hg = workspace_.data() + G;

  // gates[j] = (dot(x, w_ih row j) + dot(h, w_hh row j)) + b[j] — the
  // same (matmul + add) + bias association as the reference.
  const std::size_t full = (G / 8) * 8;
  g_matvec(packed_.data() + layer.pw_ih, G / 8, I, x, gates);
  g_matvec(packed_.data() + layer.pw_hh, G / 8, H, h, hg);
  for (std::size_t j = full; j < G; ++j) {
    gates[j] = dot1(wi + j * I, I, x);
    hg[j] = dot1(wh + j * H, H, h);
  }
  for (std::size_t j = 0; j < G; ++j) gates[j] = gates[j] + hg[j] + b[j];

  for (std::size_t u = 0; u < H; ++u) {
    const double gi = sigmoid(gates[u]);
    const double gf = sigmoid(gates[H + u]);
    const double gg = std::tanh(gates[2 * H + u]);
    const double go = sigmoid(gates[3 * H + u]);
    const double cv = gf * c[u] + gi * gg;
    const double tc = std::tanh(cv);
    c[u] = cv;
    h[u] = go * tc;
  }
}

// Reference semantics (GruLayer::step): gi = x W_ih^T + b_ih,
// gh = h W_hh^T + b_hh, r = sigmoid(gi[j] + gh[j]),
// z = sigmoid(gi[H+j] + gh[H+j]), n = tanh(gi[2H+j] + r * gh[2H+j]),
// h' = (1 - z) * n + z * h.
void InferenceSession::step_gru(const Layer& layer, const double* x) {
  const std::size_t H = layer.hidden;
  const std::size_t I = layer.input;
  const std::size_t G = 3 * H;
  const double* wi = weights_.data() + layer.w_ih;
  const double* wh = weights_.data() + layer.w_hh;
  const double* bi = weights_.data() + layer.b_ih;
  const double* bh = weights_.data() + layer.b_hh;
  double* h = state_.data() + layer.h_off;
  double* gi = workspace_.data();
  double* gh = gi + G;

  const std::size_t full = (G / 8) * 8;
  g_matvec(packed_.data() + layer.pw_ih, G / 8, I, x, gi);
  g_matvec(packed_.data() + layer.pw_hh, G / 8, H, h, gh);
  for (std::size_t j = full; j < G; ++j) {
    gi[j] = dot1(wi + j * I, I, x);
    gh[j] = dot1(wh + j * H, H, h);
  }
  for (std::size_t j = 0; j < G; ++j) {
    gi[j] += bi[j];
    gh[j] += bh[j];
  }

  for (std::size_t u = 0; u < H; ++u) {
    const double rv = sigmoid(gi[u] + gh[u]);
    const double zv = sigmoid(gi[H + u] + gh[H + u]);
    const double hl = gh[2 * H + u];
    const double nv = std::tanh(gi[2 * H + u] + rv * hl);
    h[u] = (1.0 - zv) * nv + zv * h[u];
  }
}

std::span<const double> InferenceSession::predict(
    std::span<const double> features) {
  if (features.size() != input_) {
    throw std::invalid_argument("InferenceSession: feature width mismatch");
  }
  const double* x = features.data();
  for (const Layer& layer : layers_) {
    if (kind_ == TrunkKind::Lstm) {
      step_lstm(layer, x);
    } else {
      step_gru(layer, x);
    }
    x = state_.data() + layer.h_off;  // feeds the layer above
  }
  const Layer& top = layers_.back();
  const double* h = state_.data() + top.h_off;
  if (heads_.empty()) {
    return {h, top.hidden};
  }
  // Head o: out[o] = dot(h, w row o) + b[o], matching Linear::forward
  // (matmul_nt + add_row_bias).
  double* out = workspace_.data() + head_out_off_;
  std::size_t k = 0;
  for (const Head& head : heads_) {
    const double* w = weights_.data() + head.w;
    const double* b = weights_.data() + head.b;
    for (std::size_t o = 0; o < head.out; ++o) {
      out[k++] = dot1(w + o * top.hidden, top.hidden, h) + b[o];
    }
  }
  return {out, output_size_};
}

std::vector<WeightView> InferenceSession::weight_views(
    const std::string& trunk_prefix,
    const std::vector<std::string>& head_names) {
  if (head_names.size() != heads_.size()) {
    throw std::invalid_argument("InferenceSession: head name count mismatch");
  }
  const std::size_t G = gate_factor(kind_);
  std::vector<WeightView> views;
  views.reserve(layers_.size() * 4 + heads_.size() * 2);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::string prefix = trunk_prefix + "l" + std::to_string(l) + ".";
    double* base = weights_.data();
    views.push_back(
        {prefix + "w_ih", G * layer.hidden, layer.input, base + layer.w_ih});
    views.push_back(
        {prefix + "w_hh", G * layer.hidden, layer.hidden, base + layer.w_hh});
    if (kind_ == TrunkKind::Lstm) {
      views.push_back({prefix + "b", 1, G * layer.hidden, base + layer.b_ih});
    } else {
      views.push_back(
          {prefix + "b_ih", 1, G * layer.hidden, base + layer.b_ih});
      views.push_back(
          {prefix + "b_hh", 1, G * layer.hidden, base + layer.b_hh});
    }
  }
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    const Head& head = heads_[i];
    double* base = weights_.data();
    views.push_back({head_names[i] + ".w", head.out, layers_.back().hidden,
                     base + head.w});
    views.push_back({head_names[i] + ".b", 1, head.out, base + head.b});
  }
  return views;
}

}  // namespace esim::ml
