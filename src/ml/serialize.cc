#include "ml/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace esim::ml {
namespace {

constexpr std::uint32_t kMagicParams = 0x45534D4C;  // "ESML" (v1)
constexpr std::uint32_t kMagicModel = 0x45534D32;   // "ESM2" (v2)

void write_u32(std::ofstream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::ifstream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

std::vector<WeightView> views_of(const std::vector<Parameter>& params) {
  std::vector<WeightView> views;
  views.reserve(params.size());
  for (const auto& p : params) {
    views.push_back(
        {p.name, p.value->rows(), p.value->cols(), p.value->data()});
  }
  return views;
}

/// The shared named-weight payload: count, then per entry
/// name-len/name/rows/cols and rows*cols raw doubles.
void write_payload(std::ofstream& os, const std::vector<WeightView>& views) {
  write_u32(os, static_cast<std::uint32_t>(views.size()));
  for (const auto& v : views) {
    write_u32(os, static_cast<std::uint32_t>(v.name.size()));
    os.write(v.name.data(), static_cast<std::streamsize>(v.name.size()));
    write_u32(os, static_cast<std::uint32_t>(v.rows));
    write_u32(os, static_cast<std::uint32_t>(v.cols));
    os.write(reinterpret_cast<const char*>(v.data),
             static_cast<std::streamsize>(v.rows * v.cols * sizeof(double)));
  }
}

void read_payload(std::ifstream& is, const std::vector<WeightView>& views,
                  const std::string& what) {
  const std::uint32_t count = read_u32(is);
  if (!is) throw std::runtime_error(what + ": truncated file");
  if (count != views.size()) {
    throw std::runtime_error(what + ": parameter count mismatch");
  }
  std::unordered_map<std::string, const WeightView*> by_name;
  for (const auto& v : views) by_name[v.name] = &v;

  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t name_len = read_u32(is);
    if (!is) throw std::runtime_error(what + ": truncated file");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const std::uint32_t rows = read_u32(is);
    const std::uint32_t cols = read_u32(is);
    if (!is) throw std::runtime_error(what + ": truncated file");
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error(what + ": unknown parameter " + name);
    }
    const WeightView& v = *it->second;
    if (v.rows != rows || v.cols != cols) {
      throw std::runtime_error(what + ": shape mismatch for " + name);
    }
    is.read(reinterpret_cast<char*>(v.data),
            static_cast<std::streamsize>(v.rows * v.cols * sizeof(double)));
    if (!is) throw std::runtime_error(what + ": truncated file");
  }
}

ModelHeader read_model_header(std::ifstream& is, const std::string& path) {
  if (read_u32(is) != kMagicModel) {
    throw std::runtime_error("load_model: bad magic in " + path);
  }
  const std::uint32_t kind = read_u32(is);
  ModelHeader h;
  h.input = read_u32(is);
  h.hidden = read_u32(is);
  h.layers = read_u32(is);
  h.heads = read_u32(is);
  if (!is) throw std::runtime_error("load_model: truncated file");
  switch (kind) {
    case static_cast<std::uint32_t>(TrunkKind::Lstm):
      h.trunk = TrunkKind::Lstm;
      break;
    case static_cast<std::uint32_t>(TrunkKind::Gru):
      h.trunk = TrunkKind::Gru;
      break;
    default:
      throw std::runtime_error("load_model: unknown trunk kind " +
                               std::to_string(kind));
  }
  return h;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter>& params) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  write_u32(os, kMagicParams);
  write_payload(os, views_of(params));
  if (!os) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter>& params) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  if (read_u32(is) != kMagicParams) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  read_payload(is, views_of(params), "load_parameters");
}

void save_model(const std::string& path, const ModelHeader& header,
                const std::vector<Parameter>& params) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw std::runtime_error("save_model: cannot open " + path);
  write_u32(os, kMagicModel);
  write_u32(os, static_cast<std::uint32_t>(header.trunk));
  write_u32(os, header.input);
  write_u32(os, header.hidden);
  write_u32(os, header.layers);
  write_u32(os, header.heads);
  write_payload(os, views_of(params));
  if (!os) throw std::runtime_error("save_model: write failed");
}

ModelHeader load_model_header(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("load_model: cannot open " + path);
  return read_model_header(is, path);
}

ModelHeader load_model(const std::string& path,
                       const std::vector<WeightView>& views) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("load_model: cannot open " + path);
  const ModelHeader h = read_model_header(is, path);
  read_payload(is, views, "load_model");
  return h;
}

}  // namespace esim::ml
