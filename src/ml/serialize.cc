#include "ml/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace esim::ml {
namespace {

constexpr std::uint32_t kMagic = 0x45534D4C;  // "ESML"

void write_u32(std::ofstream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::ifstream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter>& params) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    write_u32(os, static_cast<std::uint32_t>(p.name.size()));
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    write_u32(os, static_cast<std::uint32_t>(p.value->rows()));
    write_u32(os, static_cast<std::uint32_t>(p.value->cols()));
    os.write(reinterpret_cast<const char*>(p.value->data()),
             static_cast<std::streamsize>(p.value->size() * sizeof(double)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter>& params) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  if (read_u32(is) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint32_t count = read_u32(is);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  std::unordered_map<std::string, const Parameter*> by_name;
  for (const auto& p : params) by_name[p.name] = &p;

  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const std::uint32_t rows = read_u32(is);
    const std::uint32_t cols = read_u32(is);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_parameters: unknown parameter " + name);
    }
    Tensor& t = *it->second->value;
    if (t.rows() != rows || t.cols() != cols) {
      throw std::runtime_error("load_parameters: shape mismatch for " +
                               name);
    }
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(double)));
    if (!is) throw std::runtime_error("load_parameters: truncated file");
  }
}

}  // namespace esim::ml
