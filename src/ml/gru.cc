#include "ml/gru.h"

#include <stdexcept>

#include "ml/activations.h"

namespace esim::ml {

GruLayer::GruLayer(std::size_t input, std::size_t hidden, sim::Rng& rng)
    : input_{input},
      hidden_{hidden},
      w_ih_{3 * hidden, input},
      w_hh_{3 * hidden, hidden},
      b_ih_{1, 3 * hidden},
      b_hh_{1, 3 * hidden},
      gw_ih_{3 * hidden, input},
      gw_hh_{3 * hidden, hidden},
      gb_ih_{1, 3 * hidden},
      gb_hh_{1, 3 * hidden} {
  if (input == 0 || hidden == 0) {
    throw std::invalid_argument("GruLayer: zero dimension");
  }
  w_ih_.fill_xavier(rng);
  w_hh_.fill_xavier(rng);
}

GruLayer::State GruLayer::initial_state(std::size_t batch) const {
  return State{Tensor{batch, hidden_}};
}

Tensor GruLayer::step(const Tensor& x, State& state,
                      StepCache* cache) const {
  const std::size_t B = x.rows();
  const std::size_t H = hidden_;

  Tensor gi = matmul_nt(x, w_ih_);        // [B x 3H]
  add_row_bias(gi, b_ih_);
  Tensor gh = matmul_nt(state.h, w_hh_);  // [B x 3H]
  add_row_bias(gh, b_hh_);

  Tensor r{B, H}, z{B, H}, n{B, H}, hn_lin{B, H}, h_new{B, H};
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t j = 0; j < H; ++j) {
      const double rv = sigmoid(gi.at(b, j) + gh.at(b, j));
      const double zv = sigmoid(gi.at(b, H + j) + gh.at(b, H + j));
      const double hl = gh.at(b, 2 * H + j);
      const double nv = tanh_act(gi.at(b, 2 * H + j) + rv * hl);
      r.at(b, j) = rv;
      z.at(b, j) = zv;
      n.at(b, j) = nv;
      hn_lin.at(b, j) = hl;
      h_new.at(b, j) = (1.0 - zv) * nv + zv * state.h.at(b, j);
    }
  }

  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = state.h;
    cache->r = r;
    cache->z = z;
    cache->n = n;
    cache->hn_lin = std::move(hn_lin);
  }
  state.h = h_new;
  return state.h;
}

GruLayer::StepGrad GruLayer::step_backward(const StepCache& cache,
                                           const Tensor& dh) {
  const std::size_t B = dh.rows();
  const std::size_t H = hidden_;

  // Pre-activation gate gradients for the input-side (gi) and
  // hidden-side (gh) linear maps; they differ only in the n slot.
  Tensor dgi{B, 3 * H};
  Tensor dgh{B, 3 * H};
  Tensor dh_prev_direct{B, H};
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t j = 0; j < H; ++j) {
      const double r = cache.r.at(b, j);
      const double z = cache.z.at(b, j);
      const double n = cache.n.at(b, j);
      const double hl = cache.hn_lin.at(b, j);
      const double hp = cache.h_prev.at(b, j);
      const double g = dh.at(b, j);

      const double dz = g * (hp - n);
      const double dn = g * (1.0 - z);
      dh_prev_direct.at(b, j) = g * z;

      const double dan = dn * dtanh_from_value(n);  // pre-tanh
      const double dr = dan * hl;
      const double dhl = dan * r;

      const double daz = dz * dsigmoid_from_value(z);
      const double dar = dr * dsigmoid_from_value(r);

      dgi.at(b, j) = dar;
      dgi.at(b, H + j) = daz;
      dgi.at(b, 2 * H + j) = dan;
      dgh.at(b, j) = dar;
      dgh.at(b, H + j) = daz;
      dgh.at(b, 2 * H + j) = dhl;
    }
  }

  gw_ih_.add(matmul_tn(dgi, cache.x));
  gw_hh_.add(matmul_tn(dgh, cache.h_prev));
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t j = 0; j < 3 * H; ++j) {
      gb_ih_.at(0, j) += dgi.at(b, j);
      gb_hh_.at(0, j) += dgh.at(b, j);
    }
  }

  StepGrad out;
  out.dx = matmul(dgi, w_ih_);
  out.dh_prev = matmul(dgh, w_hh_);
  out.dh_prev.add(dh_prev_direct);
  return out;
}

std::vector<Parameter> GruLayer::parameters() {
  return {{"w_ih", &w_ih_, &gw_ih_},
          {"w_hh", &w_hh_, &gw_hh_},
          {"b_ih", &b_ih_, &gb_ih_},
          {"b_hh", &b_hh_, &gb_hh_}};
}

Gru::Gru(std::size_t input, std::size_t hidden, std::size_t num_layers,
         sim::Rng& rng) {
  if (num_layers == 0) throw std::invalid_argument("Gru: zero layers");
  layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    layers_.emplace_back(l == 0 ? input : hidden, hidden, rng);
  }
}

Gru::State Gru::initial_state(std::size_t batch) const {
  State s;
  s.layers.reserve(layers_.size());
  for (const auto& layer : layers_) {
    s.layers.push_back(layer.initial_state(batch));
  }
  return s;
}

Tensor Gru::step(const Tensor& x, State& state) const {
  Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].step(h, state.layers[l], nullptr);
  }
  return h;
}

std::vector<Tensor> Gru::forward(const std::vector<Tensor>& xs,
                                 State& state, SequenceCache& cache) const {
  cache.steps.assign(xs.size(),
                     std::vector<GruLayer::StepCache>(layers_.size()));
  std::vector<Tensor> hs;
  hs.reserve(xs.size());
  for (std::size_t t = 0; t < xs.size(); ++t) {
    Tensor h = xs[t];
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].step(h, state.layers[l], &cache.steps[t][l]);
    }
    hs.push_back(std::move(h));
  }
  return hs;
}

void Gru::backward(const SequenceCache& cache,
                   const std::vector<Tensor>& dhs) {
  if (cache.steps.size() != dhs.size()) {
    throw std::invalid_argument("Gru::backward: length mismatch");
  }
  if (cache.steps.empty()) return;
  const std::size_t T = cache.steps.size();
  const std::size_t L = layers_.size();
  const std::size_t B = dhs.front().rows();

  std::vector<Tensor> dh_next(L);
  for (std::size_t l = 0; l < L; ++l) {
    dh_next[l] = Tensor{B, layers_[l].hidden_size()};
  }
  for (std::size_t t = T; t-- > 0;) {
    Tensor dh_down = dhs[t];
    for (std::size_t l = L; l-- > 0;) {
      Tensor dh = std::move(dh_down);
      dh.add(dh_next[l]);
      auto grad = layers_[l].step_backward(cache.steps[t][l], dh);
      dh_next[l] = std::move(grad.dh_prev);
      dh_down = std::move(grad.dx);
    }
  }
}

std::vector<Parameter> Gru::parameters() {
  std::vector<Parameter> out;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (auto& p : layers_[l].parameters()) {
      out.push_back(Parameter{"l" + std::to_string(l) + "." + p.name,
                              p.value, p.grad});
    }
  }
  return out;
}

}  // namespace esim::ml
