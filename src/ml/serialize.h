// Parameter (de)serialization: lets a trained cluster model be saved once
// and reused across simulations — the paper's "once trained they are
// cheap to run, reusable" property.
//
// Two container formats share one named-weight payload:
//   v1 "ESML" (save_parameters/load_parameters) — the bare payload,
//     loaded by name into a live module tree;
//   v2 "ESM2" (save_model/load_model) — an architecture header (trunk
//     kind + dimensions) followed by the same payload. The header lets a
//     consumer build an owning ml::InferenceSession and stream the
//     weights straight into it, so a loaded model never materializes the
//     training-side gradient tensors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/inference.h"
#include "ml/module.h"

namespace esim::ml {

/// Writes the parameter set to a binary file. Throws on I/O failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter>& params);

/// Loads parameters by name into an already constructed module whose
/// parameter names and shapes must match the file exactly. Throws on any
/// mismatch or I/O failure.
void load_parameters(const std::string& path,
                     const std::vector<Parameter>& params);

/// Architecture header of a v2 model file: enough to size an
/// InferenceSession without reading the weights.
struct ModelHeader {
  TrunkKind trunk = TrunkKind::Lstm;
  std::uint32_t input = 0;
  std::uint32_t hidden = 0;
  std::uint32_t layers = 0;
  std::uint32_t heads = 0;
};

/// Writes header + named-parameter payload as one model file.
void save_model(const std::string& path, const ModelHeader& header,
                const std::vector<Parameter>& params);

/// Reads and validates just the header. Throws std::runtime_error on bad
/// magic, an unknown trunk kind, or a truncated file.
ModelHeader load_model_header(const std::string& path);

/// Loads a model file's payload into raw weight views (no Tensors, no
/// gradients). View names and shapes must match the file exactly; throws
/// std::runtime_error on any mismatch, unknown trunk kind, or truncation.
/// Returns the validated header.
ModelHeader load_model(const std::string& path,
                       const std::vector<WeightView>& views);

}  // namespace esim::ml
