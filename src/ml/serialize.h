// Parameter (de)serialization: lets a trained cluster model be saved once
// and reused across simulations — the paper's "once trained they are
// cheap to run, reusable" property.
#pragma once

#include <string>
#include <vector>

#include "ml/module.h"

namespace esim::ml {

/// Writes the parameter set to a binary file. Throws on I/O failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter>& params);

/// Loads parameters by name into an already constructed module whose
/// parameter names and shapes must match the file exactly. Throws on any
/// mismatch or I/O failure.
void load_parameters(const std::string& path,
                     const std::vector<Parameter>& params);

}  // namespace esim::ml
