#include "ml/loss.h"

#include <cmath>
#include <stdexcept>

#include "ml/activations.h"

namespace esim::ml {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

}  // namespace

double bce_with_logits(const Tensor& logits, const Tensor& targets,
                       Tensor* dlogits) {
  require_same_shape(logits, targets, "bce_with_logits");
  const std::size_t n = logits.size();
  if (n == 0) return 0.0;
  double loss = 0.0;
  if (dlogits != nullptr) *dlogits = Tensor{logits.rows(), logits.cols()};
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double z = logits.at(r, c);
      const double y = targets.at(r, c);
      // max(z,0) - z*y + log(1 + exp(-|z|)) — stable for both signs.
      loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
      if (dlogits != nullptr) {
        dlogits->at(r, c) =
            (sigmoid(z) - y) / static_cast<double>(n);
      }
    }
  }
  return loss / static_cast<double>(n);
}

double masked_mse(const Tensor& pred, const Tensor& target,
                  const Tensor& mask, Tensor* dpred) {
  require_same_shape(pred, target, "masked_mse");
  require_same_shape(pred, mask, "masked_mse");
  std::size_t count = 0;
  for (std::size_t r = 0; r < mask.rows(); ++r) {
    for (std::size_t c = 0; c < mask.cols(); ++c) {
      if (mask.at(r, c) != 0.0) ++count;
    }
  }
  if (dpred != nullptr) *dpred = Tensor{pred.rows(), pred.cols()};
  if (count == 0) return 0.0;
  double loss = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    for (std::size_t c = 0; c < pred.cols(); ++c) {
      if (mask.at(r, c) == 0.0) continue;
      const double e = pred.at(r, c) - target.at(r, c);
      loss += e * e;
      if (dpred != nullptr) {
        dpred->at(r, c) = 2.0 * e / static_cast<double>(count);
      }
    }
  }
  return loss / static_cast<double>(count);
}

}  // namespace esim::ml
