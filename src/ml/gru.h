// Gated recurrent units — the canonical "LSTM variant" the paper's §7
// proposes testing. Same step/forward/backward surface as ml::Lstm;
// gate math follows the PyTorch convention:
//   r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
//   z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
//   n = tanh  (W_in x + b_in + r * (W_hn h + b_hn))
//   h' = (1 - z) * n + z * h
#pragma once

#include <cstddef>
#include <vector>

#include "ml/module.h"
#include "ml/tensor.h"
#include "sim/random.h"

namespace esim::ml {

/// One GRU layer, stepped a timestep at a time on [batch x features].
class GruLayer : public Module {
 public:
  /// Hidden state for a batch: [B x H].
  struct State {
    Tensor h;
  };

  /// Forward intermediates for one step's backward pass.
  struct StepCache {
    Tensor x, h_prev;
    Tensor r, z, n;   // post-activation gates
    Tensor hn_lin;    // W_hn h_prev + b_hn (pre-reset)
  };

  struct StepGrad {
    Tensor dx, dh_prev;
  };

  GruLayer(std::size_t input, std::size_t hidden, sim::Rng& rng);

  /// Zero state for `batch` sequences.
  State initial_state(std::size_t batch) const;

  /// One timestep; updates `state`, returns the new hidden output, fills
  /// `cache` when non-null.
  Tensor step(const Tensor& x, State& state, StepCache* cache) const;

  /// Backward through one cached step given dL/dh'. Accumulates
  /// parameter gradients and returns input/previous-state gradients.
  StepGrad step_backward(const StepCache& cache, const Tensor& dh);

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

  /// Read-only weight access for the inference-session compiler.
  const Tensor& w_ih() const { return w_ih_; }
  const Tensor& w_hh() const { return w_hh_; }
  const Tensor& b_ih() const { return b_ih_; }
  const Tensor& b_hh() const { return b_hh_; }

  std::vector<Parameter> parameters() override;

 private:
  std::size_t input_;
  std::size_t hidden_;
  // Gates packed [r, z, n] along the 3H axis.
  Tensor w_ih_;   // [3H x input]
  Tensor w_hh_;   // [3H x H]
  Tensor b_ih_;   // [1 x 3H]
  Tensor b_hh_;   // [1 x 3H]
  Tensor gw_ih_, gw_hh_, gb_ih_, gb_hh_;
};

/// A stack of GRU layers mirroring ml::Lstm's API.
class Gru : public Module {
 public:
  struct State {
    std::vector<GruLayer::State> layers;
  };
  struct SequenceCache {
    std::vector<std::vector<GruLayer::StepCache>> steps;
  };

  Gru(std::size_t input, std::size_t hidden, std::size_t num_layers,
      sim::Rng& rng);

  State initial_state(std::size_t batch) const;

  /// Streaming inference step through all layers.
  Tensor step(const Tensor& x, State& state) const;

  /// Training forward over a sequence, filling `cache`.
  std::vector<Tensor> forward(const std::vector<Tensor>& xs, State& state,
                              SequenceCache& cache) const;

  /// BPTT; `dhs[t]` is the gradient at the top output of step t.
  void backward(const SequenceCache& cache, const std::vector<Tensor>& dhs);

  std::size_t hidden_size() const { return layers_.front().hidden_size(); }
  std::size_t num_layers() const { return layers_.size(); }
  const std::vector<GruLayer>& layers() const { return layers_; }

  std::vector<Parameter> parameters() override;

 private:
  std::vector<GruLayer> layers_;
};

}  // namespace esim::ml
