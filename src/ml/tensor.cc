#include "ml/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esim::ml {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}

Tensor::Tensor(std::size_t rows, std::size_t cols,
               std::vector<double> values)
    : rows_{rows}, cols_{cols}, data_{std::move(values)} {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Tensor: values size mismatch");
  }
}

void Tensor::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Tensor::fill_normal(sim::Rng& rng, double stddev) {
  for (auto& v : data_) v = rng.normal(0.0, stddev);
}

void Tensor::fill_xavier(sim::Rng& rng) {
  // Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
  const double a =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) v = rng.uniform(-a, a);
}

void Tensor::add(const Tensor& other) { add_scaled(other, 1.0); }

void Tensor::add_scaled(const Tensor& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Tensor::add: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::scale(double k) {
  for (auto& v : data_) v *= k;
}

void Tensor::map(const std::function<double(double)>& fn) {
  for (auto& v : data_) v = fn(v);
}

double Tensor::sum() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

double Tensor::abs_max() const {
  double m = 0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimensions differ");
  }
  Tensor c{a.rows(), b.cols()};
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a.at(i, p);
      if (av == 0.0) continue;
      const double* brow = b.data() + p * n;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimensions differ");
  }
  Tensor c{a.rows(), b.rows()};
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.data() + j * k;
      double s = 0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn: inner dimensions differ");
  }
  Tensor c{a.cols(), b.cols()};
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.data() + p * m;
    const double* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void add_row_bias(Tensor& m, const Tensor& bias) {
  if (bias.rows() != 1 || bias.cols() != m.cols()) {
    throw std::invalid_argument("add_row_bias: bias shape mismatch");
  }
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double* row = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] += bias.at(0, j);
  }
}

}  // namespace esim::ml
