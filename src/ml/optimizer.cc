#include "ml/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace esim::ml {

SgdMomentum::SgdMomentum(std::vector<Parameter> params, const Config& config)
    : params_{std::move(params)}, config_{config} {
  if (params_.empty()) {
    throw std::invalid_argument("SgdMomentum: no parameters");
  }
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value->rows(), p.value->cols());
  }
}

SgdMomentum::SgdMomentum(Module& module, const Config& config)
    : SgdMomentum{module.parameters(), config} {
  module_ = &module;
}

double SgdMomentum::step() {
  double sq = 0.0;
  for (const auto& p : params_) {
    for (std::size_t i = 0; i < p.grad->size(); ++i) {
      const double g = p.grad->data()[i];
      sq += g * g;
    }
  }
  const double norm = std::sqrt(sq);
  double scale = 1.0;
  if (config_.clip_norm > 0.0 && norm > config_.clip_norm) {
    scale = config_.clip_norm / norm;
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& v = velocity_[k];
    const Tensor& g = *params_[k].grad;
    Tensor& w = *params_[k].value;
    for (std::size_t i = 0; i < w.size(); ++i) {
      v.data()[i] = config_.momentum * v.data()[i] -
                    config_.learning_rate * scale * g.data()[i];
      w.data()[i] += v.data()[i];
    }
  }
  if (module_ != nullptr) module_->bump_weight_version();
  return norm;
}

void SgdMomentum::zero_grad() {
  for (auto& p : params_) p.grad->zero();
}

}  // namespace esim::ml
