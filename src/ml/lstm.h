// Long short-term memory layers with full backpropagation through time.
//
// This is the micro model's trunk (paper §4.2): a stacked LSTM whose
// hidden state carries the recent history of packets crossing a cluster
// boundary. Layout and math follow Hochreiter & Schmidhuber as popularised
// by modern frameworks: gates packed [input, forget, cell, output] along
// the 4H axis, forget-gate bias initialised to 1.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/module.h"
#include "ml/tensor.h"
#include "sim/random.h"

namespace esim::ml {

/// One LSTM layer operating a step at a time on [batch x features] rows.
class LstmLayer : public Module {
 public:
  /// Hidden and cell state for a batch: both [B x H].
  struct State {
    Tensor h;
    Tensor c;
  };

  /// Everything needed to backpropagate through one step.
  struct StepCache {
    Tensor x, h_prev, c_prev;
    Tensor i, f, g, o;  // post-activation gate values, each [B x H]
    Tensor c, tanh_c;
  };

  /// Gradients flowing out of one backward step.
  struct StepGrad {
    Tensor dx, dh_prev, dc_prev;
  };

  LstmLayer(std::size_t input, std::size_t hidden, sim::Rng& rng);

  /// Zero state for a batch of `batch` sequences.
  State initial_state(std::size_t batch) const;

  /// One timestep. `x` is [B x input]; updates `state` in place and
  /// returns the new hidden output ([B x H]); when `cache` is non-null it
  /// is filled for a later step_backward.
  Tensor step(const Tensor& x, State& state, StepCache* cache) const;

  /// Backward through one cached step. `dh`/`dc` are the gradients
  /// arriving at this step's h/c outputs (dc from the next timestep; pass
  /// zeros at the sequence end). Accumulates parameter gradients.
  StepGrad step_backward(const StepCache& cache, const Tensor& dh,
                         const Tensor& dc);

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

  /// Read-only weight access for the inference-session compiler.
  const Tensor& w_ih() const { return w_ih_; }
  const Tensor& w_hh() const { return w_hh_; }
  const Tensor& bias() const { return b_; }

  std::vector<Parameter> parameters() override;

 private:
  std::size_t input_;
  std::size_t hidden_;
  Tensor w_ih_;  // [4H x input]
  Tensor w_hh_;  // [4H x H]
  Tensor b_;     // [1 x 4H]
  Tensor gw_ih_, gw_hh_, gb_;
};

/// A stack of LSTM layers (the paper's prototype uses two).
class Lstm : public Module {
 public:
  /// Per-layer states.
  struct State {
    std::vector<LstmLayer::State> layers;
  };

  /// Caches for a whole forward sequence: caches[t][layer].
  struct SequenceCache {
    std::vector<std::vector<LstmLayer::StepCache>> steps;
  };

  Lstm(std::size_t input, std::size_t hidden, std::size_t num_layers,
       sim::Rng& rng);

  /// Zero state for `batch` parallel sequences.
  State initial_state(std::size_t batch) const;

  /// Streaming inference step: feeds one timestep through all layers,
  /// updating `state`; returns the top layer's hidden output [B x H].
  Tensor step(const Tensor& x, State& state) const;

  /// Training forward over a sequence xs[t] = [B x input], starting from
  /// `state` (updated in place to the final state). Returns the top
  /// hidden output per step and fills `cache`.
  std::vector<Tensor> forward(const std::vector<Tensor>& xs, State& state,
                              SequenceCache& cache) const;

  /// BPTT: `dhs[t]` is the loss gradient w.r.t. the top output at step t.
  /// Accumulates parameter gradients. Gradients are not propagated into
  /// the pre-sequence state (sequences are treated as truncation
  /// boundaries).
  void backward(const SequenceCache& cache,
                const std::vector<Tensor>& dhs);

  std::size_t hidden_size() const { return layers_.front().hidden_size(); }
  std::size_t input_size() const { return layers_.front().input_size(); }
  std::size_t num_layers() const { return layers_.size(); }
  const std::vector<LstmLayer>& layers() const { return layers_; }

  std::vector<Parameter> parameters() override;

 private:
  std::vector<LstmLayer> layers_;
};

}  // namespace esim::ml
