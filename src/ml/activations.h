// Activation functions and their derivatives.
//
// The transcendentals here are deliberately NOT libm: exp_act / tanh_act /
// sigmoid evaluate a fixed IEEE operation sequence (Cody-Waite range
// reduction, Taylor-Horner core, exponent-bit scaling) so the AVX2 ports
// in ml/inference.cc can replay the exact same sequence four elements at
// a time and stay bit-identical to this scalar form. libm's exp/tanh have
// no such vector twin — their table-driven paths cannot be reproduced
// lane-for-lane — and the scalar activation pass is what dominated the
// per-packet inference cost once the matmuls were fused (bench_inference).
//
// Every consumer of the model numerics (trainer forward pass, Tensor
// reference step, compiled InferenceSession) uses these same functions,
// so the session-vs-reference and batched-vs-sequential bit-identity
// contracts are unaffected by the approximation error (~1 ulp core,
// <= ~1e-15 relative overall vs true exp/tanh).
//
// Bit-identity rules for the vector ports: same operation order, plain
// mul/add (no FMA contraction — inference.cc is compiled with
// -ffp-contract=off; this header's other TUs target baseline x86-64,
// which has no FMA to contract into), round-to-nearest-even for the
// exponent split, and branch selection that computes the same value the
// mask blend selects.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace esim::ml {

// exp core: exp(x) = 2^k * exp(r), k = round(x / ln 2), |r| <= ln2/2.
inline constexpr double kExpLog2E = 1.4426950408889634074;     // 1/ln 2
inline constexpr double kExpLn2Hi = 6.93147180369123816490e-1;  // ln 2 head
inline constexpr double kExpLn2Lo = 1.90821492927058770002e-10;  // ln 2 tail
/// exp saturates outside [-708, 708] (the double normal range): below it
/// returns exactly 0, above it evaluates at 708. Callers here only ever
/// need the saturating tails (sigmoid/tanh arguments).
inline constexpr double kExpClamp = 708.0;
/// Below this |x|, tanh uses the odd Taylor polynomial directly; above
/// it, the exp form (1 - e) / (1 + e) has no meaningful cancellation.
inline constexpr double kTanhSmall = 0.0625;

/// exp(x) with a fixed op sequence: degree-13 Taylor core on the reduced
/// argument (truncation ~4e-18 relative), scaled by 2^k built from
/// exponent bits. |k| <= 1022 after the clamp, so the bit build never
/// overflows the exponent field. The polynomial is evaluated in Estrin
/// form — Horner's 13-deep multiply-add chain stalls the out-of-order
/// window when gate elements evaluate back to back; Estrin's tree is
/// ~2x shallower for a handful of extra multiplies.
inline double exp_act(double x) {
  if (x > kExpClamp) x = kExpClamp;
  if (x < -kExpClamp) return 0.0;
  const double k = std::nearbyint(x * kExpLog2E);
  const double r = (x - k * kExpLn2Hi) - k * kExpLn2Lo;
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const double q0 = 1.0 + r;
  const double q1 = 0.5 + r * (1.0 / 6.0);
  const double q2 = 1.0 / 24.0 + r * (1.0 / 120.0);
  const double q3 = 1.0 / 720.0 + r * (1.0 / 5040.0);
  const double q4 = 1.0 / 40320.0 + r * (1.0 / 362880.0);
  const double q5 = 1.0 / 3628800.0 + r * (1.0 / 39916800.0);
  const double q6 = 1.0 / 479001600.0 + r * (1.0 / 6227020800.0);
  const double lo = (q0 + r2 * q1) + r4 * (q2 + r2 * q3);
  const double hi = (q4 + r2 * q5) + r4 * q6;
  const double p = lo + r8 * hi;
  const auto ki = static_cast<std::int64_t>(k);
  const double s = std::bit_cast<double>((ki + 1023) << 52);
  return p * s;
}

/// tanh(x): odd Taylor polynomial below kTanhSmall, otherwise
/// (1 - e) / (1 + e) with e = exp_act(-2|x|) and the sign restored.
/// Saturates to exactly +-1.0 for |x| >= ~19 (as true tanh rounds).
inline double tanh_act(double x) {
  const double a = std::abs(x);
  if (a < kTanhSmall) {
    const double z = x * x;
    double p = 21844.0 / 6081075.0;
    p = p * z + -1382.0 / 155925.0;
    p = p * z + 62.0 / 2835.0;
    p = p * z + -17.0 / 315.0;
    p = p * z + 2.0 / 15.0;
    p = p * z + -1.0 / 3.0;
    return x + (x * z) * p;
  }
  const double e = exp_act(-2.0 * a);
  const double r = (1.0 - e) / (1.0 + e);
  return x < 0.0 ? -r : r;
}

/// Logistic sigmoid, numerically stable on both tails: both branches
/// share e = exp_act(-|x|) so the vector port can blend the numerator.
inline double sigmoid(double x) {
  if (x >= 0) {
    const double z = exp_act(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = exp_act(x);
  return z / (1.0 + z);
}

/// d/dx sigmoid(x) expressed via the activation value s = sigmoid(x).
inline double dsigmoid_from_value(double s) { return s * (1.0 - s); }

/// d/dx tanh(x) expressed via the activation value t = tanh(x).
inline double dtanh_from_value(double t) { return 1.0 - t * t; }

}  // namespace esim::ml
