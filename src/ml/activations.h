// Scalar activation functions and their derivatives.
#pragma once

#include <cmath>

namespace esim::ml {

/// Logistic sigmoid, numerically stable on both tails.
inline double sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// d/dx sigmoid(x) expressed via the activation value s = sigmoid(x).
inline double dsigmoid_from_value(double s) { return s * (1.0 - s); }

/// d/dx tanh(x) expressed via the activation value t = tanh(x).
inline double dtanh_from_value(double t) { return 1.0 - t * t; }

}  // namespace esim::ml
