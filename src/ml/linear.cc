#include "ml/linear.h"

#include <stdexcept>

namespace esim::ml {

Linear::Linear(std::size_t in, std::size_t out, sim::Rng& rng)
    : w_{out, in}, b_{1, out}, gw_{out, in}, gb_{1, out} {
  if (in == 0 || out == 0) {
    throw std::invalid_argument("Linear: zero dimension");
  }
  w_.fill_xavier(rng);
}

Tensor Linear::forward(const Tensor& x) const {
  Tensor y = matmul_nt(x, w_);
  add_row_bias(y, b_);
  return y;
}

Tensor Linear::backward(const Tensor& x, const Tensor& dy) {
  // dW += dy^T x ; db += column sums of dy ; dx = dy W.
  gw_.add(matmul_tn(dy, x));
  for (std::size_t i = 0; i < dy.rows(); ++i) {
    for (std::size_t j = 0; j < dy.cols(); ++j) {
      gb_.at(0, j) += dy.at(i, j);
    }
  }
  return matmul(dy, w_);
}

std::vector<Parameter> Linear::parameters() {
  return {{"w", &w_, &gw_}, {"b", &b_, &gb_}};
}

}  // namespace esim::ml
