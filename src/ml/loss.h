// Loss functions for the micro model's two heads (paper §4.2):
// binary cross entropy for the per-packet drop decision and mean squared
// error for the latency regression, masked so that dropped packets
// back-propagate no latency error.
#pragma once

#include "ml/tensor.h"

namespace esim::ml {

/// Numerically stable binary cross entropy on logits. `logits` and
/// `targets` (0/1) share a shape. Returns the mean loss; when `dlogits`
/// is non-null it receives dL/dlogits (same shape, already averaged).
double bce_with_logits(const Tensor& logits, const Tensor& targets,
                       Tensor* dlogits);

/// Mean squared error over the elements where mask != 0. Returns 0 (and a
/// zero gradient) when the mask is empty. `dpred` receives dL/dpred.
double masked_mse(const Tensor& pred, const Tensor& target,
                  const Tensor& mask, Tensor* dpred);

}  // namespace esim::ml
