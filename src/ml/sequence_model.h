// Type-erased recurrent sequence model: the micro model's trunk can be an
// LSTM (the paper's prototype) or a GRU (§7's "new LSTM variants")
// without the training or inference code caring which.
#pragma once

#include <memory>
#include <vector>

#include "ml/gru.h"
#include "ml/inference.h"
#include "ml/lstm.h"
#include "ml/module.h"
#include "ml/tensor.h"

namespace esim::ml {

/// Abstract stacked recurrent network over [B x F] timesteps.
class SequenceModel : public Module {
 public:
  /// Opaque per-run hidden state.
  class State {
   public:
    virtual ~State() = default;
  };

  /// Opaque forward cache for BPTT.
  class Cache {
   public:
    virtual ~Cache() = default;
  };

  /// Fresh zero state for `batch` parallel sequences.
  virtual std::unique_ptr<State> make_state(std::size_t batch) const = 0;

  /// Streaming step: consumes one [B x F] input, returns [B x H].
  virtual Tensor step(const Tensor& x, State& state) const = 0;

  /// Training forward over a sequence; returns top outputs per step and
  /// the cache to pass to backward().
  virtual std::vector<Tensor> forward(const std::vector<Tensor>& xs,
                                      State& state,
                                      std::unique_ptr<Cache>& cache) const = 0;

  /// BPTT through a cached forward; accumulates parameter gradients.
  virtual void backward(const Cache& cache,
                        const std::vector<Tensor>& dhs) = 0;

  virtual std::size_t hidden_size() const = 0;

  /// Deep copy (weights and gradients; no hidden state).
  virtual std::unique_ptr<SequenceModel> clone() const = 0;

  /// Compiles the allocation-free inference plan: an immutable snapshot
  /// of this trunk's current weights (optimizer updates and
  /// load_parameters() writes after this call are NOT seen — compile a
  /// new session). Optional fused linear heads run over the top hidden
  /// output. See ml/inference.h for the bit-identity contract.
  virtual std::unique_ptr<InferenceSession> make_inference_session(
      const std::vector<InferenceSession::HeadWeights>& heads = {}) const = 0;
};

/// Builds a trunk of the requested architecture.
std::unique_ptr<SequenceModel> make_sequence_model(TrunkKind kind,
                                                   std::size_t input,
                                                   std::size_t hidden,
                                                   std::size_t layers,
                                                   sim::Rng& rng);

}  // namespace esim::ml
