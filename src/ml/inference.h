// The inference half of the train/infer split (DESIGN.md §8).
//
// Training keeps the autograd Tensor/StepCache machinery in ml/lstm.h and
// ml/gru.h. Inference runs through an InferenceSession: a compiled
// forward plan over one recurrent trunk plus optional fused linear heads.
// The session preallocates a single contiguous workspace (gate scratch,
// per-layer hidden/cell state, head outputs) at construction and steps
// through fused LSTM/GRU kernels — one pass over the packed gate block,
// no intermediate i/f/g/o/c/tanh_c tensors, zero heap allocation per
// predict() call.
//
// Contract: predictions are bit-identical to the naive Tensor step()
// reference. Every output scalar is produced by the same sequence of
// floating-point operations in the same order; only where intermediates
// live (and how many gate rows advance per instruction) changes. The
// packed kernels interleave consecutive weight rows so several row dot
// products run as independent accumulator chains — each row still sums
// p = 0..n-1 in exactly the reference order, so each result is identical
// to the last bit. SIMD variants (dispatched at runtime, see
// inference.cc) put those independent rows in vector lanes; lane
// arithmetic is the same IEEE mul-then-add as the scalar reference and
// FMA contraction is disabled for this translation unit.
// tests/inference_session_test.cc holds this contract for both trunks,
// multi-layer stacks, and serialized-then-reloaded models.
//
// Sessions are immutable snapshots. Construction copies the weights into
// a session-owned buffer (natural row-major for serialization, plus the
// row-interleaved packed copy the kernels read); later in-place updates
// to the source tensors are NOT seen — rebuild the session after
// training steps (MicroModel::recompile(), or make_inference_session()
// again). Only the streaming hidden state mutates after build. The one
// mutation hook is the load path: weight_views() exposes named views
// over the natural buffer for ml::load_model, after which repack()
// refreshes the kernel copy.
//
// Stale-session safety net: a snapshot cannot see later writes, so a
// missed recompile used to silently predict with old weights. Builders
// now register the source Module(s) via watch_weight_source(); every
// predict entry point compares the recorded weight versions against the
// live modules and throws std::logic_error when a watched module was
// written since the snapshot (optimizer steps bump the version, see
// ml/module.h).
//
// Batched prediction (DESIGN.md §8): two entry points amortize weight
// streaming across packets, both bit-identical per output to the
// equivalent sequence of predict() calls.
//   * predict_batch(): one stream, N arrival-ordered timesteps. Each
//     layer batches its input-side W_ih matmul over all N steps (weights
//     stream once per batch), then applies the W_hh recurrence step by
//     step; recurrent state advances exactly as N predict() calls would.
//   * lanes mode (set_lane_count(L) + predict_lanes()): L independent
//     streams sharing weights but not state. Both gate matmuls batch
//     across lanes, so every weight matrix streams once per L packets.
// The batched kernels tile independent rows x lanes into vector
// registers; each (row, lane) product still sums p = 0..n-1 in the
// reference order, so the identity contract is unchanged.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/module.h"
#include "ml/tensor.h"

namespace esim::ml {

/// The trunk architectures available to the micro model.
enum class TrunkKind { Lstm, Gru };

/// Display name, e.g. "lstm".
const char* trunk_kind_name(TrunkKind kind);

/// Compiled allocation-free forward plan: recurrent trunk + fused heads.
class InferenceSession {
 public:
  /// Weight sources of one recurrent layer, snapshotted at construction.
  /// LSTM layers bind their single bias to `b_ih` and leave `b_hh` null;
  /// GRU layers bind both.
  struct LayerWeights {
    const Tensor* w_ih = nullptr;  ///< [G*H x input], G = 4 (LSTM) / 3 (GRU)
    const Tensor* w_hh = nullptr;  ///< [G*H x H]
    const Tensor* b_ih = nullptr;  ///< [1 x G*H]
    const Tensor* b_hh = nullptr;  ///< [1 x G*H], GRU only
  };

  /// One fused linear head over the top hidden output.
  struct HeadWeights {
    const Tensor* weight = nullptr;  ///< [out x H]
    const Tensor* bias = nullptr;    ///< [1 x out]
  };

  /// Shape-only description for an empty session, e.g. when loading a
  /// model file without its training-side module tree.
  struct Arch {
    TrunkKind kind = TrunkKind::Lstm;
    std::size_t input = 0;
    std::size_t hidden = 0;
    std::size_t layers = 0;
    std::vector<std::size_t> head_outputs;  ///< output width per head
  };

  /// Snapshot build: copies the current weight values out of live
  /// training tensors (see file comment — later tensor updates are not
  /// seen). Throws std::invalid_argument on missing tensors or shape
  /// mismatch.
  InferenceSession(TrunkKind kind, const std::vector<LayerWeights>& layers,
                   const std::vector<HeadWeights>& heads);

  /// Shape-only build: allocates zeroed weight storage for `arch`; fill
  /// it through weight_views() + ml::load_model, then call repack().
  explicit InferenceSession(const Arch& arch);

  /// Advances the streaming hidden state by one input row and returns the
  /// concatenated head outputs (or the top hidden output when the session
  /// has no heads). The returned span points into the session workspace
  /// and is valid until the next predict()/reset_state() call. Performs
  /// zero heap allocations. Throws std::invalid_argument if
  /// features.size() != input_size(). Throws std::logic_error when a
  /// watched weight source changed since the snapshot (stale session).
  std::span<const double> predict(std::span<const double> features);

  /// Batched streaming inference: consumes `n` consecutive timesteps
  /// (features.size() == n * input_size(), row-major, arrival order) and
  /// returns n concatenated output rows (n * output_size(), or
  /// n * hidden_size() for a headless session). Bit-identical to n
  /// predict() calls — including the final recurrent state — but each
  /// layer's input-side gate matmul runs once over the whole batch, so
  /// W_ih streams once per batch instead of once per packet. Zero heap
  /// allocations once capacity covers n (see reserve_batch; the first
  /// call at a new high-water n grows the batch workspace). The returned
  /// span is valid until the next predict*/reset_state() call. Requires
  /// lane_count() == 1.
  std::span<const double> predict_batch(std::span<const double> features,
                                        std::size_t n);

  /// Pre-sizes the batch workspace so predict_batch(n <= max_n) and
  /// predict_lanes() after set_lane_count(L <= max_n) allocate nothing.
  void reserve_batch(std::size_t max_n);

  /// Switches the session to `lanes` independent streams (state is
  /// zeroed; lane 0 is the predict()/predict_batch() stream when
  /// lanes == 1). Lanes share the weight snapshot but carry private
  /// hidden/cell state.
  void set_lane_count(std::size_t lanes);
  std::size_t lane_count() const { return lanes_; }

  /// Advances every lane by one timestep: features holds lane_count()
  /// input rows (lane-major), the result holds lane_count() output rows.
  /// Per lane bit-identical to a dedicated session running predict() on
  /// that lane's stream; both gate matmuls batch across lanes so every
  /// weight matrix streams once per call. Zero heap allocations (the
  /// lane workspace is sized by set_lane_count/reserve_batch).
  std::span<const double> predict_lanes(std::span<const double> features);

  /// Registers a weight-source module: predict entry points throw
  /// std::logic_error once the module's weight_version() moves past the
  /// value recorded here (i.e. the snapshot went stale). The module must
  /// outlive the session.
  void watch_weight_source(const Module& module);

  /// Zeroes the streaming hidden (and cell) state of every lane.
  void reset_state();

  TrunkKind kind() const { return kind_; }
  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return layers_.back().hidden; }
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t num_heads() const { return heads_.size(); }
  std::size_t output_size() const { return output_size_; }

  /// Named views over the natural (row-major) weight buffer, in the same
  /// order and with the same names as the training-side parameters() they
  /// mirror: `<trunk_prefix>l<i>.w_ih` etc. per layer, then
  /// `<head_name>.w` / `<head_name>.b` per head. Feed these to
  /// ml::load_model and call repack() afterwards. Throws
  /// std::invalid_argument when head_names does not match the head count.
  std::vector<WeightView> weight_views(
      const std::string& trunk_prefix,
      const std::vector<std::string>& head_names);

  /// Rebuilds the kernel-side packed weight copy from the natural buffer
  /// after writes through weight_views(). Part of the load sequence, not
  /// a per-step operation.
  void repack();

 private:
  struct Layer {
    std::size_t input = 0;
    std::size_t hidden = 0;
    std::size_t w_ih = 0, w_hh = 0, b_ih = 0, b_hh = 0;  // into weights_
    std::size_t pw_ih = 0, pw_hh = 0;  // packed copies, into packed_
    std::size_t h_off = 0;             // into state_
    std::size_t c_off = 0;             // into state_, LSTM only
  };

  struct Head {
    std::size_t out = 0;
    std::size_t w = 0, b = 0;  // into weights_
  };

  void assign_offsets(const Arch& arch);  // lays out weights_, fills layers_
  void finalize_plan();  // sizes state_/workspace_/packed_, packs weights
  void step_lstm(const Layer& layer, const double* x, double* gi,
                 std::size_t lane);
  void step_gru(const Layer& layer, const double* x, double* gi,
                std::size_t lane);
  void combine_lstm(const Layer& layer, double* gi, const double* gh,
                    std::size_t lane);
  void combine_gru(const Layer& layer, double* gi, double* gh,
                   std::size_t lane);
  void check_fresh() const;  // throws on a stale watched weight source
  void write_heads(const double* h, double* out) const;
  std::size_t row_width() const;  // output_size_, or hidden when headless
  double* lane_state(std::size_t lane) { return state_.data() + lane * state_size_; }

  TrunkKind kind_ = TrunkKind::Lstm;
  std::size_t input_ = 0;
  std::vector<Layer> layers_;
  std::vector<Head> heads_;
  std::vector<double> weights_;    // natural row-major weight storage
  std::vector<double> packed_;     // row-interleaved kernel copy of w_ih/w_hh
  std::vector<double> state_;      // h (+ c) per layer, per lane, contiguous
  std::vector<double> workspace_;  // gate scratch, then head outputs
  std::vector<double> batch_x_;    // batch: per-step layer inputs/outputs
  std::vector<double> batch_gates_;  // batch: input-side gate rows, per step
  std::vector<double> batch_out_;  // batch: output rows, per step/lane
  std::size_t batch_capacity_ = 0;  // steps/lanes the batch buffers cover
  std::size_t state_size_ = 0;     // per-lane h (+ c) footprint
  std::size_t lanes_ = 1;
  std::size_t head_out_off_ = 0;   // into workspace_
  std::size_t output_size_ = 0;
  // Weight-source modules and the versions snapshotted from them.
  std::vector<std::pair<const Module*, std::uint64_t>> watched_;
};

}  // namespace esim::ml
