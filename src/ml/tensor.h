// Minimal dense tensor (2-D, row-major, double precision).
//
// This is the numerical substrate standing in for the paper's PyTorch/ATEN
// dependency. It is deliberately small: the micro model needs matrix
// multiplies, elementwise maps, and nothing else. Correctness of everything
// built on top is established by finite-difference gradient checks in the
// test suite rather than by reference to an external framework.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/random.h"

namespace esim::ml {

/// Row-major 2-D matrix of doubles. A vector is a 1 x n or n x 1 Tensor.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() = default;

  /// Zero-initialized rows x cols tensor.
  Tensor(std::size_t rows, std::size_t cols);

  /// Tensor filled from `values` (size must equal rows*cols).
  Tensor(std::size_t rows, std::size_t cols, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  /// Element access (no bounds check in release).
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to zero.
  void zero();

  /// Fills with N(0, stddev) values from `rng`.
  void fill_normal(sim::Rng& rng, double stddev);

  /// Xavier/Glorot uniform initialisation for a [out x in] weight.
  void fill_xavier(sim::Rng& rng);

  /// Elementwise in-place: this += other (shapes must match).
  void add(const Tensor& other);

  /// Elementwise in-place: this += scale * other.
  void add_scaled(const Tensor& other, double scale);

  /// In-place scalar multiply.
  void scale(double k);

  /// Applies `fn` to every element in place.
  void map(const std::function<double(double)>& fn);

  /// Sum of all elements.
  double sum() const;

  /// Largest absolute element (0 for empty).
  double abs_max() const;

  bool operator==(const Tensor&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A (m x k) * B (k x n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A (m x k) * B^T where B is (n x k). The natural layout for weight
/// matrices stored [out x in].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A^T (k x m -> m x k) * B (k x n). Used in backward passes.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Adds a 1 x n bias row to every row of a (m x n) matrix, in place.
void add_row_bias(Tensor& m, const Tensor& bias);

}  // namespace esim::ml
