#include "ml/lstm.h"

#include <stdexcept>

#include "ml/activations.h"

namespace esim::ml {

LstmLayer::LstmLayer(std::size_t input, std::size_t hidden, sim::Rng& rng)
    : input_{input},
      hidden_{hidden},
      w_ih_{4 * hidden, input},
      w_hh_{4 * hidden, hidden},
      b_{1, 4 * hidden},
      gw_ih_{4 * hidden, input},
      gw_hh_{4 * hidden, hidden},
      gb_{1, 4 * hidden} {
  if (input == 0 || hidden == 0) {
    throw std::invalid_argument("LstmLayer: zero dimension");
  }
  w_ih_.fill_xavier(rng);
  w_hh_.fill_xavier(rng);
  // Forget-gate bias starts at 1 so early training does not forget.
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j) b_.at(0, j) = 1.0;
}

LstmLayer::State LstmLayer::initial_state(std::size_t batch) const {
  return State{Tensor{batch, hidden_}, Tensor{batch, hidden_}};
}

Tensor LstmLayer::step(const Tensor& x, State& state,
                       StepCache* cache) const {
  const std::size_t B = x.rows();
  const std::size_t H = hidden_;

  Tensor gates = matmul_nt(x, w_ih_);           // [B x 4H]
  gates.add(matmul_nt(state.h, w_hh_));
  add_row_bias(gates, b_);

  Tensor i{B, H}, f{B, H}, g{B, H}, o{B, H}, c{B, H}, tanh_c{B, H};
  for (std::size_t r = 0; r < B; ++r) {
    for (std::size_t j = 0; j < H; ++j) {
      const double gi = sigmoid(gates.at(r, j));
      const double gf = sigmoid(gates.at(r, H + j));
      const double gg = tanh_act(gates.at(r, 2 * H + j));
      const double go = sigmoid(gates.at(r, 3 * H + j));
      const double cv = gf * state.c.at(r, j) + gi * gg;
      const double tc = tanh_act(cv);
      i.at(r, j) = gi;
      f.at(r, j) = gf;
      g.at(r, j) = gg;
      o.at(r, j) = go;
      c.at(r, j) = cv;
      tanh_c.at(r, j) = tc;
    }
  }

  Tensor h{B, H};
  for (std::size_t r = 0; r < B; ++r) {
    for (std::size_t j = 0; j < H; ++j) {
      h.at(r, j) = o.at(r, j) * tanh_c.at(r, j);
    }
  }

  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = state.h;
    cache->c_prev = state.c;
    cache->i = i;
    cache->f = f;
    cache->g = g;
    cache->o = o;
    cache->c = c;
    cache->tanh_c = tanh_c;
  }

  state.h = h;
  state.c = std::move(c);
  return state.h;
}

LstmLayer::StepGrad LstmLayer::step_backward(const StepCache& cache,
                                             const Tensor& dh,
                                             const Tensor& dc) {
  const std::size_t B = dh.rows();
  const std::size_t H = hidden_;

  Tensor dgates{B, 4 * H};
  Tensor dc_prev{B, H};
  for (std::size_t r = 0; r < B; ++r) {
    for (std::size_t j = 0; j < H; ++j) {
      const double i = cache.i.at(r, j);
      const double f = cache.f.at(r, j);
      const double g = cache.g.at(r, j);
      const double o = cache.o.at(r, j);
      const double tc = cache.tanh_c.at(r, j);
      const double dh_v = dh.at(r, j);

      const double dct = dc.at(r, j) + dh_v * o * dtanh_from_value(tc);
      const double do_v = dh_v * tc;
      const double di = dct * g;
      const double dg = dct * i;
      const double df = dct * cache.c_prev.at(r, j);

      dgates.at(r, j) = di * dsigmoid_from_value(i);
      dgates.at(r, H + j) = df * dsigmoid_from_value(f);
      dgates.at(r, 2 * H + j) = dg * dtanh_from_value(g);
      dgates.at(r, 3 * H + j) = do_v * dsigmoid_from_value(o);
      dc_prev.at(r, j) = dct * f;
    }
  }

  gw_ih_.add(matmul_tn(dgates, cache.x));
  gw_hh_.add(matmul_tn(dgates, cache.h_prev));
  for (std::size_t r = 0; r < B; ++r) {
    for (std::size_t j = 0; j < 4 * H; ++j) {
      gb_.at(0, j) += dgates.at(r, j);
    }
  }

  StepGrad out;
  out.dx = matmul(dgates, w_ih_);
  out.dh_prev = matmul(dgates, w_hh_);
  out.dc_prev = std::move(dc_prev);
  return out;
}

std::vector<Parameter> LstmLayer::parameters() {
  return {{"w_ih", &w_ih_, &gw_ih_},
          {"w_hh", &w_hh_, &gw_hh_},
          {"b", &b_, &gb_}};
}

Lstm::Lstm(std::size_t input, std::size_t hidden, std::size_t num_layers,
           sim::Rng& rng) {
  if (num_layers == 0) throw std::invalid_argument("Lstm: zero layers");
  layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    layers_.emplace_back(l == 0 ? input : hidden, hidden, rng);
  }
}

Lstm::State Lstm::initial_state(std::size_t batch) const {
  State s;
  s.layers.reserve(layers_.size());
  for (const auto& layer : layers_) {
    s.layers.push_back(layer.initial_state(batch));
  }
  return s;
}

Tensor Lstm::step(const Tensor& x, State& state) const {
  Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].step(h, state.layers[l], nullptr);
  }
  return h;
}

std::vector<Tensor> Lstm::forward(const std::vector<Tensor>& xs,
                                  State& state,
                                  SequenceCache& cache) const {
  cache.steps.assign(xs.size(),
                     std::vector<LstmLayer::StepCache>(layers_.size()));
  std::vector<Tensor> hs;
  hs.reserve(xs.size());
  for (std::size_t t = 0; t < xs.size(); ++t) {
    Tensor h = xs[t];
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].step(h, state.layers[l], &cache.steps[t][l]);
    }
    hs.push_back(std::move(h));
  }
  return hs;
}

void Lstm::backward(const SequenceCache& cache,
                    const std::vector<Tensor>& dhs) {
  if (cache.steps.size() != dhs.size()) {
    throw std::invalid_argument("Lstm::backward: length mismatch");
  }
  if (cache.steps.empty()) return;
  const std::size_t T = cache.steps.size();
  const std::size_t L = layers_.size();
  const std::size_t B = dhs.front().rows();

  // Running gradients entering each layer's (h, c) from the future.
  std::vector<Tensor> dh_next(L), dc_next(L);
  for (std::size_t l = 0; l < L; ++l) {
    dh_next[l] = Tensor{B, layers_[l].hidden_size()};
    dc_next[l] = Tensor{B, layers_[l].hidden_size()};
  }

  for (std::size_t t = T; t-- > 0;) {
    // Gradient flowing into the top layer at step t: loss + future.
    Tensor dh_down = dhs[t];
    for (std::size_t l = L; l-- > 0;) {
      Tensor dh = std::move(dh_down);
      dh.add(dh_next[l]);
      auto grad = layers_[l].step_backward(cache.steps[t][l], dh,
                                           dc_next[l]);
      dh_next[l] = std::move(grad.dh_prev);
      dc_next[l] = std::move(grad.dc_prev);
      dh_down = std::move(grad.dx);  // becomes dh for the layer below
    }
  }
}

std::vector<Parameter> Lstm::parameters() {
  std::vector<Parameter> out;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (auto& p : layers_[l].parameters()) {
      out.push_back(
          Parameter{"l" + std::to_string(l) + "." + p.name, p.value,
                    p.grad});
    }
  }
  return out;
}

}  // namespace esim::ml
