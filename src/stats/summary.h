// Streaming summary statistics (Welford) and exponentially weighted moving
// averages. These are the numerical primitives used by measurement
// collectors and by the macro congestion-state classifier.
#pragma once

#include <cstdint>
#include <limits>

namespace esim::stats {

/// Single-pass streaming summary: count, mean, variance, min, max.
/// Uses Welford's algorithm, so it is numerically stable for long runs.
class Summary {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations.
  std::uint64_t count() const { return count_; }
  /// Mean of observations (0 when empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 when count < 2).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another summary into this one (parallel collection).
  void merge(const Summary& other);

  /// Resets to the empty state.
  void reset();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average with configurable smoothing.
/// add(x): ewma <- (1-alpha)*ewma + alpha*x. Before the first sample the
/// value() is 0 and valid() is false.
class Ewma {
 public:
  /// alpha in (0, 1]; larger = more responsive.
  explicit Ewma(double alpha = 0.1);

  /// Folds in one observation.
  void add(double x);

  /// Current smoothed value.
  double value() const { return value_; }

  /// True once at least one sample has been added.
  bool valid() const { return valid_; }

  /// Resets to the empty state.
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool valid_ = false;
};

}  // namespace esim::stats
