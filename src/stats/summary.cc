#include "stats/summary.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace esim::stats {

void Summary::add(double x) {
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void Summary::reset() { *this = Summary{}; }

Ewma::Ewma(double alpha) : alpha_{alpha} {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
  }
}

void Ewma::add(double x) {
  if (!valid_) {
    value_ = x;
    valid_ = true;
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * x;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  valid_ = false;
}

}  // namespace esim::stats
