// Distances between empirical distributions.
//
// EXPERIMENTS.md reports the Kolmogorov–Smirnov statistic and the 1-D
// Wasserstein (earth mover's) distance between the groundtruth and
// approximate RTT CDFs, quantifying what Figure 4 of the paper shows
// visually.
#pragma once

#include "stats/cdf.h"

namespace esim::stats {

/// Two-sample Kolmogorov–Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Returns a value in [0, 1]; 0 means identical empirical CDFs.
/// Requires both distributions to be non-empty.
double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b);

/// 1-D Wasserstein-1 distance (area between the two CDFs), in the units of
/// the samples. Requires both distributions to be non-empty.
double wasserstein_distance(const EmpiricalCdf& a, const EmpiricalCdf& b);

}  // namespace esim::stats
