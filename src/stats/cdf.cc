#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esim::stats {

void EmpiricalCdf::add(double x) {
  // Appending in non-decreasing order keeps the set sorted; only a sample
  // below the current back invalidates it. This keeps interleaved
  // add/quantile usage (the Figure 4 collectors) from re-sorting a large
  // already-sorted vector on every query.
  if (sorted_ && !samples_.empty() && x < samples_.back()) sorted_ = false;
  samples_.push_back(x);
}

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  if (xs.empty()) return;  // nothing appended: sortedness is untouched
  if (sorted_) {
    double prev = samples_.empty() ? xs.front() : samples_.back();
    for (const double x : xs) {
      if (x < prev) {
        sorted_ = false;
        break;
      }
      prev = x;
    }
  }
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::quantile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("EmpiricalCdf::quantile on empty distribution");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::quantile: p outside [0,1]");
  }
  ensure_sorted();
  const auto n = samples_.size();
  const auto idx = static_cast<std::size_t>(
      std::min<double>(std::floor(p * static_cast<double>(n)),
                       static_cast<double>(n - 1)));
  return samples_[idx];
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) {
    throw std::logic_error("EmpiricalCdf::min on empty distribution");
  }
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) {
    throw std::logic_error("EmpiricalCdf::max on empty distribution");
  }
  ensure_sorted();
  return samples_.back();
}

const std::vector<double>& EmpiricalCdf::sorted() const {
  ensure_sorted();
  return samples_;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t n) const {
  if (n < 2) throw std::invalid_argument("EmpiricalCdf::curve: n < 2");
  if (samples_.empty()) return {};
  ensure_sorted();
  std::vector<std::pair<double, double>> points;
  points.reserve(n);
  const double lo = samples_.front();
  const double hi = samples_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    points.emplace_back(x, at(x));
  }
  return points;
}

}  // namespace esim::stats
