#include "stats/distance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace esim::stats {
namespace {

void require_nonempty(const EmpiricalCdf& a, const EmpiricalCdf& b,
                      const char* what) {
  if (a.empty() || b.empty()) {
    throw std::logic_error(std::string(what) + ": empty distribution");
  }
}

}  // namespace

double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  require_nonempty(a, b, "ks_distance");
  const auto& xa = a.sorted();
  const auto& xb = b.sorted();
  const double na = static_cast<double>(xa.size());
  const double nb = static_cast<double>(xb.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  // Sweep the merged sample points; the sup is attained at a sample.
  while (i < xa.size() && j < xb.size()) {
    const double x = std::min(xa[i], xb[j]);
    while (i < xa.size() && xa[i] <= x) ++i;
    while (j < xb.size() && xb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  // Tail where one side is exhausted: |1 - F_other| is maximal at the first
  // remaining point's predecessor, already covered by the loop's last step,
  // but sweep the rest for completeness.
  while (i < xa.size()) {
    ++i;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  while (j < xb.size()) {
    ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double wasserstein_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  require_nonempty(a, b, "wasserstein_distance");
  const auto& xa = a.sorted();
  const auto& xb = b.sorted();
  const double na = static_cast<double>(xa.size());
  const double nb = static_cast<double>(xb.size());

  // Merge all sample points and integrate |F_a - F_b| dx exactly.
  std::vector<double> xs;
  xs.reserve(xa.size() + xb.size());
  xs.insert(xs.end(), xa.begin(), xa.end());
  xs.insert(xs.end(), xb.begin(), xb.end());
  std::sort(xs.begin(), xs.end());

  double total = 0.0;
  std::size_t i = 0, j = 0;
  for (std::size_t k = 0; k + 1 < xs.size(); ++k) {
    while (i < xa.size() && xa[i] <= xs[k]) ++i;
    while (j < xb.size() && xb[j] <= xs[k]) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    total += std::abs(fa - fb) * (xs[k + 1] - xs[k]);
  }
  return total;
}

}  // namespace esim::stats
