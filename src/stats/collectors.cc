#include "stats/collectors.h"

namespace esim::stats {

void LatencyCollector::record(sim::SimTime latency) {
  const double s = latency.to_seconds();
  summary_.add(s);
  cdf_.add(s);
}

void FlowCollector::on_start(std::uint64_t flow_id, std::uint32_t src,
                             std::uint32_t dst, std::uint64_t bytes,
                             sim::SimTime at) {
  if (flow_id >= index_.size()) index_.resize(flow_id + 1, -1);
  index_[flow_id] = static_cast<std::int64_t>(records_.size());
  FlowRecord r;
  r.flow_id = flow_id;
  r.src_host = src;
  r.dst_host = dst;
  r.bytes = bytes;
  r.start = at;
  records_.push_back(r);
}

void FlowCollector::on_complete(std::uint64_t flow_id, sim::SimTime at) {
  if (flow_id >= index_.size() || index_[flow_id] < 0) return;
  FlowRecord& r = records_[static_cast<std::size_t>(index_[flow_id])];
  if (r.completed) return;
  r.end = at;
  r.completed = true;
  ++completed_;
}

EmpiricalCdf FlowCollector::fct_cdf() const {
  EmpiricalCdf cdf;
  for (const auto& r : records_) {
    if (r.completed) cdf.add(r.fct().to_seconds());
  }
  return cdf;
}

double FlowCollector::mean_goodput_bps() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (!r.completed) continue;
    const double secs = r.fct().to_seconds();
    if (secs <= 0.0) continue;
    total += static_cast<double>(r.bytes) * 8.0 / secs;
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace esim::stats
