// Empirical distributions: sample collection, quantiles, and CDF queries.
//
// Figure 4 of the paper compares the RTT CDFs of the groundtruth and
// approximate simulations; this is the container both sides fill.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace esim::stats {

/// An empirical cumulative distribution built from raw samples.
///
/// Samples are accumulated unordered; queries sort lazily (amortized).
class EmpiricalCdf {
 public:
  /// Adds one sample.
  void add(double x);

  /// Adds many samples.
  void add_all(const std::vector<double>& xs);

  /// Number of samples.
  std::size_t size() const { return samples_.size(); }
  /// True when no samples have been added.
  bool empty() const { return samples_.empty(); }

  /// Quantile for p in [0, 1] (nearest-rank; p=0 -> min, p=1 -> max).
  /// Requires at least one sample.
  double quantile(double p) const;

  /// Fraction of samples <= x (the CDF evaluated at x).
  double at(double x) const;

  /// Smallest and largest sample. Require at least one sample.
  double min() const;
  double max() const;

  /// Sorted copy of the samples.
  const std::vector<double>& sorted() const;

  /// True when the sample buffer is known to already be in sorted order
  /// (diagnostic; lets tests assert that appends which preserve order do
  /// not schedule a needless re-sort).
  bool sorted_hint() const { return sorted_; }

  /// Evenly spaced (value, cumulative fraction) points for plotting,
  /// `n` >= 2 points from min to max.
  std::vector<std::pair<double, double>> curve(std::size_t n) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace esim::stats
