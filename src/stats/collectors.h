// Measurement collectors wired into the simulation: RTT samples, flow
// completion times, drop accounting, and windowed rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/cdf.h"
#include "stats/summary.h"

namespace esim::stats {

/// Collects end-to-end latency/RTT samples (in seconds) with both a
/// streaming summary and the full empirical distribution.
class LatencyCollector {
 public:
  /// Records one latency sample.
  void record(sim::SimTime latency);

  /// Streaming summary over all samples (seconds).
  const Summary& summary() const { return summary_; }

  /// Full empirical distribution (seconds).
  const EmpiricalCdf& cdf() const { return cdf_; }

 private:
  Summary summary_;
  EmpiricalCdf cdf_;
};

/// Per-flow completion record.
struct FlowRecord {
  std::uint64_t flow_id = 0;
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  std::uint64_t bytes = 0;
  sim::SimTime start;
  sim::SimTime end;
  bool completed = false;

  /// Flow completion time; only meaningful when completed.
  sim::SimTime fct() const { return end - start; }
};

/// Collects flow lifecycle records and derives FCT statistics.
class FlowCollector {
 public:
  /// Notes a flow start.
  void on_start(std::uint64_t flow_id, std::uint32_t src, std::uint32_t dst,
                std::uint64_t bytes, sim::SimTime at);

  /// Notes a flow completion; ignored if the flow was never started.
  void on_complete(std::uint64_t flow_id, sim::SimTime at);

  /// All records, in start order.
  const std::vector<FlowRecord>& records() const { return records_; }

  /// Number of completed flows.
  std::size_t completed_count() const { return completed_; }

  /// FCT distribution over completed flows (seconds).
  EmpiricalCdf fct_cdf() const;

  /// Mean goodput over completed flows in bits/sec.
  double mean_goodput_bps() const;

 private:
  std::vector<FlowRecord> records_;
  std::vector<std::int64_t> index_;  // flow_id -> records_ position (or -1)
  std::size_t completed_ = 0;
};

/// Counts packet-level outcomes in one region of the network.
struct PacketCounter {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;

  /// Fraction of sent packets that were dropped (0 when nothing sent).
  double drop_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(dropped) / static_cast<double>(sent);
  }
};

}  // namespace esim::stats
