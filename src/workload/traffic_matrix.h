// Traffic matrices: who talks to whom.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/clos.h"
#include "net/packet.h"
#include "sim/random.h"

namespace esim::workload {

/// Chooses (source, destination) host pairs for new flows.
class TrafficMatrix {
 public:
  virtual ~TrafficMatrix() = default;

  /// Draws one src/dst pair with src != dst.
  virtual std::pair<net::HostId, net::HostId> sample(sim::Rng& rng) const = 0;
};

/// All-to-all uniform: any ordered pair of distinct hosts.
class UniformTraffic final : public TrafficMatrix {
 public:
  explicit UniformTraffic(std::uint32_t num_hosts);
  std::pair<net::HostId, net::HostId> sample(sim::Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
};

/// Cluster-aware mix: with probability `intra_fraction` the destination is
/// drawn from the source's own cluster, otherwise from a different cluster.
/// Models the locality of real data center traffic.
class ClusterMixTraffic final : public TrafficMatrix {
 public:
  ClusterMixTraffic(const net::ClosSpec& spec, double intra_fraction);
  std::pair<net::HostId, net::HostId> sample(sim::Rng& rng) const override;

 private:
  net::ClosSpec spec_;
  double intra_fraction_;
};

/// Incast: every sampled flow goes from a random sender to one sink.
/// Reproduces the many-to-one pattern behind the TCP minimum-window
/// pathology the paper's §2.1 motivates.
class IncastTraffic final : public TrafficMatrix {
 public:
  IncastTraffic(std::uint32_t num_hosts, net::HostId sink);
  std::pair<net::HostId, net::HostId> sample(sim::Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  net::HostId sink_;
};

/// Fixed random permutation: host i always sends to perm[i]. Stresses
/// ECMP with long-lived pair affinity.
class PermutationTraffic final : public TrafficMatrix {
 public:
  /// The permutation is derived deterministically from `seed` and has no
  /// fixed points.
  PermutationTraffic(std::uint32_t num_hosts, std::uint64_t seed);
  std::pair<net::HostId, net::HostId> sample(sim::Rng& rng) const override;

  /// The destination assigned to `src`.
  net::HostId dst_of(net::HostId src) const { return perm_.at(src); }

 private:
  std::vector<net::HostId> perm_;
};

}  // namespace esim::workload
