#include "workload/traffic_matrix.h"

#include <numeric>
#include <stdexcept>

namespace esim::workload {

UniformTraffic::UniformTraffic(std::uint32_t num_hosts)
    : num_hosts_{num_hosts} {
  if (num_hosts < 2) {
    throw std::invalid_argument("UniformTraffic: need >= 2 hosts");
  }
}

std::pair<net::HostId, net::HostId> UniformTraffic::sample(
    sim::Rng& rng) const {
  const auto src = static_cast<net::HostId>(rng.uniform_int(num_hosts_));
  auto dst = static_cast<net::HostId>(rng.uniform_int(num_hosts_ - 1));
  if (dst >= src) ++dst;
  return {src, dst};
}

ClusterMixTraffic::ClusterMixTraffic(const net::ClosSpec& spec,
                                     double intra_fraction)
    : spec_{spec}, intra_fraction_{intra_fraction} {
  spec_.validate();
  if (intra_fraction < 0.0 || intra_fraction > 1.0) {
    throw std::invalid_argument("ClusterMixTraffic: fraction outside [0,1]");
  }
  if (spec_.clusters < 2 && intra_fraction < 1.0) {
    throw std::invalid_argument(
        "ClusterMixTraffic: inter-cluster traffic needs >= 2 clusters");
  }
  if (spec_.hosts_per_cluster() < 2 && intra_fraction > 0.0) {
    throw std::invalid_argument(
        "ClusterMixTraffic: intra-cluster traffic needs >= 2 hosts per "
        "cluster");
  }
}

std::pair<net::HostId, net::HostId> ClusterMixTraffic::sample(
    sim::Rng& rng) const {
  const auto src =
      static_cast<net::HostId>(rng.uniform_int(spec_.total_hosts()));
  const std::uint32_t src_cluster = spec_.cluster_of_host(src);
  const std::uint32_t hpc = spec_.hosts_per_cluster();
  if (rng.uniform() < intra_fraction_) {
    // Destination inside the source's cluster, != src.
    auto offset = static_cast<std::uint32_t>(rng.uniform_int(hpc - 1));
    const std::uint32_t src_offset = src % hpc;
    if (offset >= src_offset) ++offset;
    return {src, src_cluster * hpc + offset};
  }
  // Destination in a different cluster.
  auto cluster =
      static_cast<std::uint32_t>(rng.uniform_int(spec_.clusters - 1));
  if (cluster >= src_cluster) ++cluster;
  const auto offset = static_cast<std::uint32_t>(rng.uniform_int(hpc));
  return {src, cluster * hpc + offset};
}

IncastTraffic::IncastTraffic(std::uint32_t num_hosts, net::HostId sink)
    : num_hosts_{num_hosts}, sink_{sink} {
  if (num_hosts < 2) {
    throw std::invalid_argument("IncastTraffic: need >= 2 hosts");
  }
  if (sink >= num_hosts) {
    throw std::invalid_argument("IncastTraffic: sink out of range");
  }
}

std::pair<net::HostId, net::HostId> IncastTraffic::sample(
    sim::Rng& rng) const {
  auto src = static_cast<net::HostId>(rng.uniform_int(num_hosts_ - 1));
  if (src >= sink_) ++src;
  return {src, sink_};
}

PermutationTraffic::PermutationTraffic(std::uint32_t num_hosts,
                                       std::uint64_t seed) {
  if (num_hosts < 2) {
    throw std::invalid_argument("PermutationTraffic: need >= 2 hosts");
  }
  perm_.resize(num_hosts);
  std::iota(perm_.begin(), perm_.end(), 0u);
  sim::Rng rng{seed};
  // Fisher-Yates, then fix any fixed points by swapping with a neighbour.
  for (std::uint32_t i = num_hosts - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(i + 1));
    std::swap(perm_[i], perm_[j]);
  }
  for (std::uint32_t i = 0; i < num_hosts; ++i) {
    if (perm_[i] == i) {
      const std::uint32_t j = (i + 1) % num_hosts;
      std::swap(perm_[i], perm_[j]);
    }
  }
}

std::pair<net::HostId, net::HostId> PermutationTraffic::sample(
    sim::Rng& rng) const {
  const auto src =
      static_cast<net::HostId>(rng.uniform_int(perm_.size()));
  return {src, perm_[src]};
}

}  // namespace esim::workload
