#include "workload/generator.h"

#include <stdexcept>

namespace esim::workload {

TrafficGenerator::TrafficGenerator(sim::Simulator& sim, std::string name,
                                   std::vector<tcp::Host*> hosts,
                                   const FlowSizeDistribution* sizes,
                                   const TrafficMatrix* matrix,
                                   const Config& config)
    : Component(sim, std::move(name)),
      hosts_{std::move(hosts)},
      sizes_{sizes},
      matrix_{matrix},
      config_{config},
      next_flow_id_{config.first_flow_id} {
  if (hosts_.empty() || sizes_ == nullptr || matrix_ == nullptr) {
    throw std::invalid_argument("TrafficGenerator: missing pieces");
  }
  if (config_.load <= 0 || config_.host_bandwidth_bps <= 0) {
    throw std::invalid_argument("TrafficGenerator: load must be positive");
  }
  // Aggregate arrival rate lambda (flows/sec) such that
  //   lambda * mean_size_bytes * 8 = load * num_hosts * host_bw.
  const double bytes_per_sec = config_.load *
                               static_cast<double>(hosts_.size()) *
                               config_.host_bandwidth_bps / 8.0;
  const double lambda = bytes_per_sec / sizes_->mean();
  mean_gap_ = sim::SimTime::from_ns(
      static_cast<std::int64_t>(1e9 / lambda));
  if (mean_gap_ <= sim::SimTime{}) mean_gap_ = sim::SimTime::from_ns(1);
}

void TrafficGenerator::start() { schedule_next(); }

void TrafficGenerator::schedule_next() {
  if (config_.max_flows != 0 && launched_ >= config_.max_flows) return;
  const double gap_s = rng().exponential(mean_gap_.to_seconds());
  const auto gap = sim::SimTime::from_seconds_f(gap_s);
  const sim::SimTime at = now() + gap;
  if (config_.stop_at != sim::SimTime{} && at >= config_.stop_at) return;
  schedule_at(at, [this] { arrive(); });
}

void TrafficGenerator::arrive() {
  const auto [src, dst] = matrix_->sample(rng());
  const std::uint64_t bytes = sizes_->sample(rng());
  if (!admission_filter || admission_filter(src, dst)) {
    tcp::Host* host = hosts_.at(src);
    const std::uint64_t flow_id = next_flow_id_++;
    collector_.on_start(flow_id, src, dst, bytes, now());
    auto* conn = host->open_flow(dst, bytes, flow_id);
    conn->on_complete = [this, flow_id] {
      collector_.on_complete(flow_id, now());
    };
    if (on_flow_started) on_flow_started(*conn);
    ++launched_;
  } else {
    ++suppressed_;
  }
  schedule_next();
}

}  // namespace esim::workload
