#include "workload/request_response.h"

#include <stdexcept>

namespace esim::workload {

namespace {
// Exchange ids are carried in flow ids: request = id, response = id with
// the top bit set, so the server can recover the exchange from the SYN.
constexpr std::uint64_t kResponseBit = 1ULL << 63;
}  // namespace

RequestResponseApp::RequestResponseApp(sim::Simulator& sim, std::string name,
                                       std::vector<tcp::Host*> hosts,
                                       const FlowSizeDistribution* responses,
                                       const TrafficMatrix* matrix,
                                       const Config& config)
    : Component(sim, std::move(name)),
      hosts_{std::move(hosts)},
      responses_{responses},
      matrix_{matrix},
      config_{config} {
  if (hosts_.empty() || responses_ == nullptr || matrix_ == nullptr) {
    throw std::invalid_argument("RequestResponseApp: missing pieces");
  }
  if (config_.arrivals_per_second <= 0 || config_.request_bytes == 0) {
    throw std::invalid_argument("RequestResponseApp: bad config");
  }
  for (auto* host : hosts_) {
    host->on_accept = [this](tcp::TcpConnection& c) {
      on_server_accept(c);
    };
  }
}

void RequestResponseApp::start() { schedule_next(); }

void RequestResponseApp::schedule_next() {
  if (config_.max_exchanges != 0 && next_id_ > config_.max_exchanges) return;
  const double gap_s = rng().exponential(1.0 / config_.arrivals_per_second);
  const sim::SimTime at = now() + sim::SimTime::from_seconds_f(gap_s);
  if (config_.stop_at != sim::SimTime{} && at >= config_.stop_at) return;
  schedule_at(at, [this] { issue_request(); });
}

void RequestResponseApp::issue_request() {
  const auto [client, server] = matrix_->sample(rng());
  const std::uint64_t id = next_id_++;
  Exchange ex;
  ex.id = id;
  ex.client = client;
  ex.server = server;
  ex.response_bytes = responses_->sample(rng());
  ex.started = now();
  by_id_[id] = exchanges_.size();
  exchanges_.push_back(ex);

  hosts_.at(client)->open_flow(server, config_.request_bytes, id);
  schedule_next();
}

void RequestResponseApp::on_server_accept(tcp::TcpConnection& conn) {
  const std::uint64_t flow_id = conn.flow_id();
  if ((flow_id & kResponseBit) != 0) return;  // it's one of our responses
  const auto it = by_id_.find(flow_id);
  if (it == by_id_.end()) return;  // someone else's flow
  const std::size_t index = it->second;
  conn.on_closed = [this, index] {
    // Request fully received: send the response body back.
    Exchange& ex = exchanges_[index];
    auto* response = hosts_.at(ex.server)->open_flow(
        ex.client, ex.response_bytes, ex.id | kResponseBit);
    response->on_complete = [this, index] {
      Exchange& done = exchanges_[index];
      if (done.done) return;
      done.done = true;
      done.finished = now();
      ++completed_;
    };
  };
}

stats::EmpiricalCdf RequestResponseApp::duration_cdf() const {
  stats::EmpiricalCdf cdf;
  for (const auto& ex : exchanges_) {
    if (ex.done) cdf.add(ex.duration().to_seconds());
  }
  return cdf;
}

}  // namespace esim::workload
