#include "workload/flow_size.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esim::workload {

FixedFlowSize::FixedFlowSize(std::uint64_t bytes) : bytes_{bytes} {
  if (bytes == 0) throw std::invalid_argument("FixedFlowSize: zero size");
}

std::uint64_t FixedFlowSize::sample(sim::Rng&) const { return bytes_; }

double FixedFlowSize::mean() const { return static_cast<double>(bytes_); }

UniformFlowSize::UniformFlowSize(std::uint64_t lo, std::uint64_t hi)
    : lo_{lo}, hi_{hi} {
  if (lo == 0 || hi < lo) {
    throw std::invalid_argument("UniformFlowSize: need 1 <= lo <= hi");
  }
}

std::uint64_t UniformFlowSize::sample(sim::Rng& rng) const {
  return lo_ + rng.uniform_int(hi_ - lo_ + 1);
}

double UniformFlowSize::mean() const {
  return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
}

ParetoFlowSize::ParetoFlowSize(std::uint64_t lo, std::uint64_t hi,
                               double alpha)
    : lo_{lo}, hi_{hi}, alpha_{alpha} {
  if (lo == 0 || hi < lo || alpha <= 0) {
    throw std::invalid_argument("ParetoFlowSize: bad parameters");
  }
}

std::uint64_t ParetoFlowSize::sample(sim::Rng& rng) const {
  const double x = rng.pareto(static_cast<double>(lo_), alpha_);
  return static_cast<std::uint64_t>(
      std::min(x, static_cast<double>(hi_)));
}

double ParetoFlowSize::mean() const {
  // Mean of the bounded Pareto on [lo, hi].
  const double l = static_cast<double>(lo_);
  const double h = static_cast<double>(hi_);
  if (alpha_ == 1.0) {
    return l * std::log(h / l) / (1.0 - l / h);
  }
  const double la = std::pow(l, alpha_);
  const double num = la * alpha_ *
                     (std::pow(l, 1.0 - alpha_) - std::pow(h, 1.0 - alpha_));
  const double den =
      (alpha_ - 1.0) * (1.0 - std::pow(l / h, alpha_));
  return num / den;
}

EmpiricalFlowSize::EmpiricalFlowSize(
    std::vector<std::pair<std::uint64_t, double>> knots)
    : knots_{std::move(knots)} {
  if (knots_.size() < 2) {
    throw std::invalid_argument("EmpiricalFlowSize: need >= 2 knots");
  }
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (knots_[i].first == 0 || knots_[i].second < 0 ||
        knots_[i].second > 1) {
      throw std::invalid_argument("EmpiricalFlowSize: knot out of range");
    }
    if (i > 0 && (knots_[i].first <= knots_[i - 1].first ||
                  knots_[i].second <= knots_[i - 1].second)) {
      throw std::invalid_argument(
          "EmpiricalFlowSize: knots must strictly increase");
    }
  }
  if (knots_.back().second != 1.0) {
    throw std::invalid_argument("EmpiricalFlowSize: last CDF value != 1");
  }

  // Mean of the piecewise log-linear interpolation, computed numerically
  // (the sampler interpolates sizes geometrically between knots).
  double mean = 0.0;
  double prev_p = 0.0;
  double prev_x = static_cast<double>(knots_.front().first);
  // Probability mass below the first knot maps to the first knot size.
  mean += knots_.front().second * prev_x;
  prev_p = knots_.front().second;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const double x = static_cast<double>(knots_[i].first);
    const double p = knots_[i].second;
    // E[size | segment] for log-linear interp: integrate exp(ln x) over u.
    const double lx0 = std::log(prev_x);
    const double lx1 = std::log(x);
    double seg_mean;
    if (std::abs(lx1 - lx0) < 1e-12) {
      seg_mean = x;
    } else {
      seg_mean = (std::exp(lx1) - std::exp(lx0)) / (lx1 - lx0);
    }
    mean += (p - prev_p) * seg_mean;
    prev_p = p;
    prev_x = x;
  }
  mean_ = mean;
}

std::uint64_t EmpiricalFlowSize::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  if (u <= knots_.front().second) return knots_.front().first;
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), u,
      [](const auto& knot, double p) { return knot.second < p; });
  if (it == knots_.end()) return knots_.back().first;
  const auto& [x1, p1] = *it;
  const auto& [x0, p0] = *(it - 1);
  const double t = (u - p0) / (p1 - p0);
  const double lx =
      std::log(static_cast<double>(x0)) +
      t * (std::log(static_cast<double>(x1)) -
           std::log(static_cast<double>(x0)));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::exp(lx)));
}

double EmpiricalFlowSize::mean() const { return mean_; }

std::unique_ptr<EmpiricalFlowSize> web_search_distribution() {
  // Discretized CDF of the DCTCP web-search workload (Alizadeh et al.,
  // SIGCOMM 2010, Figure 4 of that paper), as used by pFabric and other
  // follow-up simulation studies.
  return std::make_unique<EmpiricalFlowSize>(
      std::vector<std::pair<std::uint64_t, double>>{
          {6'000, 0.15},
          {13'000, 0.20},
          {19'000, 0.30},
          {33'000, 0.40},
          {53'000, 0.53},
          {133'000, 0.60},
          {667'000, 0.70},
          {1'340'000, 0.80},
          {3'300'000, 0.90},
          {6'700'000, 0.95},
          {20'000'000, 0.98},
          {30'000'000, 1.00},
      });
}

std::unique_ptr<EmpiricalFlowSize> mini_web_distribution() {
  // Same qualitative shape at 1/100 scale: short simulated spans still
  // complete statistically many flows.
  return std::make_unique<EmpiricalFlowSize>(
      std::vector<std::pair<std::uint64_t, double>>{
          {1'000, 0.15},
          {2'000, 0.30},
          {4'000, 0.50},
          {8'000, 0.65},
          {20'000, 0.80},
          {60'000, 0.92},
          {200'000, 0.98},
          {500'000, 1.00},
      });
}

}  // namespace esim::workload
