// Phase-boundary annotations for periodic workloads.
//
// ML-training traffic is phase-repetitive: every training step replays the
// same communication pattern (PAPERS.md, "Supercharging Packet-level
// Network Simulation of Large Model Training via Memoization and
// Fast-Forwarding"). A PhasePattern makes that structure explicit — one
// relative flow pattern, a period, a repetition count — so the phase
// memoization layer (src/memo) knows exactly where phase boundaries fall
// and which injections belong to which phase, instead of inferring
// periodicity from the flow list. Everything stays pre-materialized (no
// live randomness), matching the check::Scenario philosophy.
#pragma once

#include <cstdint>
#include <vector>

namespace esim::workload {

/// One flow of the repeating pattern, in phase-relative terms.
struct PhaseFlow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  /// Start offset within the phase, in [0, period_ns).
  std::int64_t offset_ns = 0;

  bool operator==(const PhaseFlow&) const = default;
};

/// A periodic workload: `pattern` injected at every phase boundary
/// k * period_ns for k in [0, phases).
struct PhasePattern {
  std::int64_t period_ns = 1'000'000;
  std::uint32_t phases = 1;
  std::vector<PhaseFlow> pattern;

  bool operator==(const PhasePattern&) const = default;

  /// Virtual time spanned by all phases.
  std::int64_t total_duration_ns() const {
    return period_ns * static_cast<std::int64_t>(phases);
  }

  /// Start of phase `k` (also the end of phase k-1).
  std::int64_t boundary_ns(std::uint32_t k) const {
    return period_ns * static_cast<std::int64_t>(k);
  }

  /// Phase containing virtual time `t_ns` (clamped to the last phase).
  std::uint32_t phase_of(std::int64_t t_ns) const;

  /// One absolute flow injection produced by expand(). Flow ids are
  /// assigned phase-major — first_flow_id + phase * pattern.size() +
  /// index — so a flow's id minus its phase's base recovers its index in
  /// the pattern. The memo layer leans on exactly that arithmetic to remap
  /// a recorded phase's flow ids onto a later phase's.
  struct Injection {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t bytes = 0;
    std::int64_t start_ns = 0;
    std::uint64_t flow_id = 0;
    std::uint32_t phase = 0;
    std::uint32_t index_in_phase = 0;
  };

  /// Materializes every phase's injections in (phase, index) order.
  std::vector<Injection> expand(std::uint64_t first_flow_id = 1) const;

  /// Throws std::invalid_argument on inconsistencies: non-positive period
  /// or phase count, empty pattern, offsets outside [0, period), src ==
  /// dst, zero bytes, or two same-source flows sharing an offset (which
  /// would leave that host's port assignment order-dependent — the same
  /// rule check::Scenario::validate enforces).
  void validate() const;
};

}  // namespace esim::workload
