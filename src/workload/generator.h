// Poisson open-loop traffic generator.
//
// Flows arrive as a Poisson process whose rate is derived from a target
// offered load (fraction of aggregate host uplink capacity), with sizes
// from a FlowSizeDistribution and endpoints from a TrafficMatrix — the
// standard methodology of the data center transport literature and the
// workload of the paper's evaluation (§6: "traffic patterns are drawn from
// a well-known trace of datacenter web traffic").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/component.h"
#include "stats/collectors.h"
#include "tcp/host.h"
#include "workload/flow_size.h"
#include "workload/traffic_matrix.h"

namespace esim::workload {

/// Schedules flow arrivals and launches TCP flows on the topology's hosts.
class TrafficGenerator : public sim::Component {
 public:
  struct Config {
    /// Offered load as a fraction of aggregate host uplink bandwidth,
    /// e.g. 0.3 = 30%.
    double load = 0.3;
    /// Host uplink bandwidth used in the load calculation.
    double host_bandwidth_bps = 10e9;
    /// Stop creating new flows after this time (0 = never).
    sim::SimTime stop_at;
    /// Hard cap on flows created (0 = unlimited).
    std::uint64_t max_flows = 0;
    /// First flow id to assign (flows are numbered sequentially).
    std::uint64_t first_flow_id = 1;
  };

  /// `hosts[i]` must be the host with id i (dense). The generator keeps
  /// references; the caller keeps ownership of distribution and matrix.
  TrafficGenerator(sim::Simulator& sim, std::string name,
                   std::vector<tcp::Host*> hosts,
                   const FlowSizeDistribution* sizes,
                   const TrafficMatrix* matrix, const Config& config);

  /// Starts the arrival process at the current simulation time.
  void start();

  /// Flow lifecycle records (starts and completions).
  const stats::FlowCollector& flows() const { return collector_; }
  stats::FlowCollector& flows() { return collector_; }

  /// Number of flows launched so far.
  std::uint64_t launched() const { return launched_; }

  /// Number of arrivals suppressed by the admission filter.
  std::uint64_t suppressed() const { return suppressed_; }

  /// Optional admission filter: return false to skip a sampled (src, dst)
  /// pair. The hybrid simulator uses this to elide traffic entirely
  /// between approximated clusters (paper §6.2, savings #2); the arrival
  /// *process* is unchanged, the flow is simply not instantiated.
  std::function<bool(net::HostId src, net::HostId dst)> admission_filter;

  /// Optional hook invoked for each launched flow after the connection is
  /// created (e.g. to attach extra callbacks).
  std::function<void(tcp::TcpConnection&)> on_flow_started;

  /// Mean inter-arrival gap implied by the configuration.
  sim::SimTime mean_interarrival() const { return mean_gap_; }

 private:
  void schedule_next();
  void arrive();

  std::vector<tcp::Host*> hosts_;
  const FlowSizeDistribution* sizes_;
  const TrafficMatrix* matrix_;
  Config config_;
  stats::FlowCollector collector_;
  sim::SimTime mean_gap_;
  std::uint64_t launched_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t next_flow_id_;
};

}  // namespace esim::workload
