// Flow-size distributions.
//
// The paper drives its evaluation with "a well-known trace of datacenter
// web traffic" — the DCTCP web-search workload [Alizadeh et al., SIGCOMM
// 2010]. The raw trace is not public; what is published (and what every
// follow-up simulation uses) is its flow-size CDF: a heavy-tailed mix where
// most flows are small queries but most *bytes* belong to multi-megabyte
// background flows. `web_search_distribution()` reproduces that CDF as a
// piecewise log-linear sampler (substitution documented in DESIGN.md §1).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace esim::workload {

/// Samples flow sizes in bytes.
class FlowSizeDistribution {
 public:
  virtual ~FlowSizeDistribution() = default;

  /// Draws one flow size (>= 1 byte).
  virtual std::uint64_t sample(sim::Rng& rng) const = 0;

  /// Mean flow size in bytes (used to convert offered load to arrival
  /// rate).
  virtual double mean() const = 0;
};

/// Every flow has the same size. Useful in tests and ablations.
class FixedFlowSize final : public FlowSizeDistribution {
 public:
  explicit FixedFlowSize(std::uint64_t bytes);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean() const override;

 private:
  std::uint64_t bytes_;
};

/// Uniform over [lo, hi].
class UniformFlowSize final : public FlowSizeDistribution {
 public:
  UniformFlowSize(std::uint64_t lo, std::uint64_t hi);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean() const override;

 private:
  std::uint64_t lo_, hi_;
};

/// Bounded Pareto: heavy tail with shape alpha, clipped to [lo, hi].
class ParetoFlowSize final : public FlowSizeDistribution {
 public:
  ParetoFlowSize(std::uint64_t lo, std::uint64_t hi, double alpha);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean() const override;

 private:
  std::uint64_t lo_, hi_;
  double alpha_;
};

/// Piecewise log-linear interpolation of an empirical CDF given as
/// (size_bytes, cumulative_probability) knots.
class EmpiricalFlowSize final : public FlowSizeDistribution {
 public:
  /// Knots must be strictly increasing in both coordinates, with the last
  /// probability equal to 1.
  explicit EmpiricalFlowSize(
      std::vector<std::pair<std::uint64_t, double>> knots);

  std::uint64_t sample(sim::Rng& rng) const override;
  double mean() const override;

  /// The knots this distribution interpolates.
  const std::vector<std::pair<std::uint64_t, double>>& knots() const {
    return knots_;
  }

 private:
  std::vector<std::pair<std::uint64_t, double>> knots_;
  double mean_;
};

/// The DCTCP web-search flow-size distribution (see file comment).
std::unique_ptr<EmpiricalFlowSize> web_search_distribution();

/// A lighter "web mice" mix used for fast unit/integration runs: same
/// shape (mostly small flows, a thin heavy tail) but with a mean two
/// orders of magnitude smaller, so short simulations still complete many
/// flows.
std::unique_ptr<EmpiricalFlowSize> mini_web_distribution();

}  // namespace esim::workload
