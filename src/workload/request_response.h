// Request/response application: the interactive half of data center web
// traffic (queries in the DCTCP workload the paper's evaluation draws
// from). A client sends a small request to a server; when the server's
// stack sees the request complete (FIN consumed), it opens a response
// flow back whose size is drawn from the response distribution. The
// measured quantity is the full exchange latency: request start to
// response fully acknowledged.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/component.h"
#include "stats/collectors.h"
#include "tcp/host.h"
#include "workload/flow_size.h"
#include "workload/traffic_matrix.h"

namespace esim::workload {

/// Drives Poisson request arrivals and server responses over tcp::Hosts.
///
/// Installs itself as every host's on_accept handler; at most one
/// RequestResponseApp (or other on_accept consumer) per host set.
class RequestResponseApp : public sim::Component {
 public:
  struct Config {
    /// Request body size (queries are small).
    std::uint64_t request_bytes = 1'000;
    /// Mean request arrival rate across all clients, exchanges/sec.
    double arrivals_per_second = 10'000.0;
    /// Stop issuing new requests after this time (0 = never).
    sim::SimTime stop_at;
    /// Hard cap on exchanges (0 = unlimited).
    std::uint64_t max_exchanges = 0;
  };

  /// One completed (or in-flight) exchange.
  struct Exchange {
    std::uint64_t id = 0;
    net::HostId client = 0;
    net::HostId server = 0;
    std::uint64_t response_bytes = 0;
    sim::SimTime started;
    sim::SimTime finished;
    bool done = false;
    /// Request-to-response latency; meaningful when done.
    sim::SimTime duration() const { return finished - started; }
  };

  /// `hosts[i]` must be host id i. `responses` samples the response body
  /// size; `matrix` picks (client, server) pairs.
  RequestResponseApp(sim::Simulator& sim, std::string name,
                     std::vector<tcp::Host*> hosts,
                     const FlowSizeDistribution* responses,
                     const TrafficMatrix* matrix, const Config& config);

  /// Starts the arrival process.
  void start();

  /// All exchanges, in start order.
  const std::vector<Exchange>& exchanges() const { return exchanges_; }

  /// Completed exchange count.
  std::size_t completed() const { return completed_; }

  /// Distribution of exchange durations (seconds), completed only.
  stats::EmpiricalCdf duration_cdf() const;

 private:
  void schedule_next();
  void issue_request();
  void on_server_accept(tcp::TcpConnection& conn);

  std::vector<tcp::Host*> hosts_;
  const FlowSizeDistribution* responses_;
  const TrafficMatrix* matrix_;
  Config config_;
  std::vector<Exchange> exchanges_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  std::size_t completed_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace esim::workload
