#include "workload/phases.h"

#include <set>
#include <stdexcept>

namespace esim::workload {

std::uint32_t PhasePattern::phase_of(std::int64_t t_ns) const {
  if (t_ns <= 0) return 0;
  const auto k = static_cast<std::uint64_t>(t_ns / period_ns);
  return k >= phases ? phases - 1 : static_cast<std::uint32_t>(k);
}

std::vector<PhasePattern::Injection> PhasePattern::expand(
    std::uint64_t first_flow_id) const {
  validate();
  std::vector<Injection> out;
  out.reserve(static_cast<std::size_t>(phases) * pattern.size());
  for (std::uint32_t k = 0; k < phases; ++k) {
    const std::int64_t base = boundary_ns(k);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      const PhaseFlow& f = pattern[i];
      Injection inj;
      inj.src = f.src;
      inj.dst = f.dst;
      inj.bytes = f.bytes;
      inj.start_ns = base + f.offset_ns;
      inj.flow_id = first_flow_id +
                    static_cast<std::uint64_t>(k) * pattern.size() + i;
      inj.phase = k;
      inj.index_in_phase = static_cast<std::uint32_t>(i);
      out.push_back(inj);
    }
  }
  return out;
}

void PhasePattern::validate() const {
  if (period_ns <= 0) {
    throw std::invalid_argument("PhasePattern: period must be positive");
  }
  if (phases == 0) {
    throw std::invalid_argument("PhasePattern: need at least one phase");
  }
  if (pattern.empty()) {
    throw std::invalid_argument("PhasePattern: empty flow pattern");
  }
  std::set<std::pair<std::uint32_t, std::int64_t>> starts;
  for (const PhaseFlow& f : pattern) {
    if (f.src == f.dst) {
      throw std::invalid_argument("PhasePattern: flow src == dst");
    }
    if (f.bytes == 0) {
      throw std::invalid_argument("PhasePattern: flow bytes must be positive");
    }
    if (f.offset_ns < 0 || f.offset_ns >= period_ns) {
      throw std::invalid_argument(
          "PhasePattern: flow offset outside [0, period)");
    }
    if (!starts.insert({f.src, f.offset_ns}).second) {
      throw std::invalid_argument(
          "PhasePattern: per-host flow offsets must be unique within a "
          "phase (port assignment would depend on injection order)");
    }
  }
}

}  // namespace esim::workload
