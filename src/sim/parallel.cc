#include "sim/parallel.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace esim::sim {

void Partition::post(CrossMessage m) {
  std::lock_guard lock{inbox_mu_};
  inbox_.push_back(std::move(m));
  if (inbox_depth_ != nullptr) {
    inbox_depth_->set(static_cast<std::int64_t>(inbox_.size()));
  }
}

std::size_t Partition::drain_inbox() {
  std::vector<CrossMessage> batch;
  {
    std::lock_guard lock{inbox_mu_};
    batch.swap(inbox_);
    if (inbox_depth_ != nullptr) inbox_depth_->set(0);
  }
  if (drained_ != nullptr) drained_->inc(batch.size());
  // Deterministic insertion order regardless of which sender posted first.
  std::sort(batch.begin(), batch.end(),
            [](const CrossMessage& a, const CrossMessage& b) {
              if (a.deliver_at != b.deliver_at)
                return a.deliver_at < b.deliver_at;
              if (a.source_partition != b.source_partition)
                return a.source_partition < b.source_partition;
              return a.source_seq < b.source_seq;
            });
  for (auto& m : batch) {
    sim_.schedule_at_keyed(m.deliver_at, m.key, std::move(m.fn));
  }
  return batch.size();
}

ParallelEngine::ParallelEngine(Config config)
    : config_{config}, send_seq_(config.num_partitions) {
  if (config_.num_partitions == 0) {
    throw std::invalid_argument("ParallelEngine: need at least 1 partition");
  }
  if (config_.lookahead <= SimTime{}) {
    throw std::invalid_argument("ParallelEngine: lookahead must be positive");
  }
  partitions_.reserve(config_.num_partitions);
  for (std::uint32_t i = 0; i < config_.num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>(i, config_.seed + i));
    send_seq_[i].store(0, std::memory_order_relaxed);
  }
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::set_telemetry(telemetry::Registry* registry) {
  telemetry_ = registry;
  sync_wait_ns_.clear();
  if (registry == nullptr) {
    for (auto& p : partitions_) p->set_telemetry(nullptr, nullptr);
    return;
  }
  auto* rounds = registry->counter("pdes.sync_rounds");
  auto* crossings = registry->counter("pdes.cross_messages");
  auto* executed = registry->counter("pdes.events_executed");
  auto* overhead = registry->counter("pdes.modeled_overhead_us");
  registry->add_flusher([this, rounds, crossings, executed, overhead] {
    rounds->set(stats_.sync_rounds);
    crossings->set(stats_.cross_messages);
    std::uint64_t events = 0;
    for (auto& p : partitions_) events += p->sim().events_executed();
    executed->set(events);
    overhead->set(
        static_cast<std::uint64_t>(stats_.modeled_overhead_seconds * 1e6));
  });
  sync_wait_ns_.reserve(partitions_.size());
  for (std::uint32_t i = 0; i < num_partitions(); ++i) {
    const std::string prefix = "pdes.p" + std::to_string(i);
    partitions_[i]->sim().set_telemetry(registry, prefix);
    partitions_[i]->set_telemetry(registry->gauge(prefix + ".inbox_depth"),
                                  registry->counter(prefix + ".inbox_drained"));
    sync_wait_ns_.push_back(registry->counter(prefix + ".sync_wait_ns"));
  }
}

void ParallelEngine::send_cross(std::uint32_t from, std::uint32_t to,
                                SimTime deliver_at, std::uint64_t key,
                                EventFn fn) {
  Partition& src = *partitions_.at(from);
  if (deliver_at < src.sim().now() + config_.lookahead) {
    throw std::logic_error(
        "send_cross: delivery violates lookahead (deliver_at=" +
        deliver_at.to_string() + ", now=" + src.sim().now().to_string() +
        ", lookahead=" + config_.lookahead.to_string() + ")");
  }
  const std::uint64_t seq =
      send_seq_[from].fetch_add(1, std::memory_order_relaxed);
  partitions_.at(to)->post(
      CrossMessage{deliver_at, key, from, seq, std::move(fn)});
  round_messages_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelEngine::spin_overhead(double microseconds) {
  if (microseconds <= 0.0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double, std::micro>(microseconds);
  while (std::chrono::steady_clock::now() - start < budget) {
    // Busy-wait: models a blocking MPI collective on the critical path.
  }
  stats_.modeled_overhead_seconds += microseconds / 1e6;
}

void ParallelEngine::run_until(SimTime end) {
  const std::uint32_t P = num_partitions();
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

  std::atomic<std::int64_t> min_next{kNever};
  SimTime window_end;
  bool done = false;

  auto on_window_computed = [&]() noexcept {
    // Runs on exactly one thread while the others wait in the barrier:
    // decides the next safe window and models the MPI synchronization cost.
    const std::int64_t next = min_next.load(std::memory_order_relaxed);
    if (next == kNever || SimTime::from_ns(next) >= end) {
      done = true;
    } else {
      window_end = SimTime::from_ns(next) + config_.lookahead;
      if (window_end > end) window_end = end;
    }
    const std::uint64_t msgs =
        round_messages_.exchange(0, std::memory_order_relaxed);
    stats_.cross_messages += msgs;
    telemetry::trace_instant("pdes.sync_round",
                             static_cast<std::int64_t>(msgs));
    // The terminating round executes no window: a real MPI run would not
    // pay a collective there, so charging it would inflate the modeled
    // overhead by one round per run_until call (Figure 1's denominator).
    if (!done) {
      ++stats_.sync_rounds;
      spin_overhead(config_.round_overhead_us +
                    config_.per_message_overhead_us *
                        static_cast<double>(msgs));
    }
    min_next.store(kNever, std::memory_order_relaxed);
  };

  std::barrier window_barrier(static_cast<std::ptrdiff_t>(P),
                              on_window_computed);
  std::barrier round_barrier(static_cast<std::ptrdiff_t>(P));

  std::vector<std::exception_ptr> errors(P);

  // Sync-wait accounting costs two steady_clock reads per round per
  // partition; skip them entirely unless telemetry is installed.
  telemetry::Counter* const* wait_counters =
      sync_wait_ns_.size() == P ? sync_wait_ns_.data() : nullptr;

  auto worker = [&](std::uint32_t idx) {
    Partition& part = *partitions_[idx];
    if (auto* trace = telemetry::TraceSession::active()) {
      trace->set_thread_name("partition " + std::to_string(idx));
    }
    bool failed = false;
    for (;;) {
      std::int64_t local_next = kNever;
      if (!failed) {
        try {
          part.drain_inbox();
          if (part.sim().events_pending() > 0) {
            local_next = part.sim().next_event_time().ns();
          }
        } catch (...) {
          errors[idx] = std::current_exception();
          failed = true;
        }
      }
      // Fold into the global minimum. A failed partition reports "never" so
      // the run winds down without deadlocking the barriers.
      std::int64_t cur = min_next.load(std::memory_order_relaxed);
      while (local_next < cur &&
             !min_next.compare_exchange_weak(cur, local_next,
                                             std::memory_order_relaxed)) {
      }
      if (wait_counters != nullptr) {
        const auto wait_start = std::chrono::steady_clock::now();
        window_barrier.arrive_and_wait();
        wait_counters[idx]->inc(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_start)
                .count()));
      } else {
        window_barrier.arrive_and_wait();
      }
      if (done) break;
      if (!failed) {
        try {
          telemetry::Span window_span{"pdes.window"};
          part.sim().run_until(window_end);
        } catch (...) {
          errors[idx] = std::current_exception();
          failed = true;
        }
      }
      round_barrier.arrive_and_wait();
    }
    if (!failed) {
      // Advance the clock to the requested end for a consistent epilogue.
      part.sim().run_until(end);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t i = 0; i < P; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  stats_.events_executed = 0;
  for (auto& p : partitions_) {
    stats_.events_executed += p->sim().events_executed();
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace esim::sim
