#include "sim/parallel.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace esim::sim {
namespace {

constexpr std::int64_t kNeverNs = std::numeric_limits<std::int64_t>::max();

/// a + b for non-negative int64 without overflow (saturates at max).
std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  return a > std::numeric_limits<std::int64_t>::max() - b
             ? std::numeric_limits<std::int64_t>::max()
             : a + b;
}

}  // namespace

Partition::Partition(std::uint32_t index, std::uint64_t seed,
                     std::uint32_t num_sources, std::size_t ring_capacity)
    : index_{index},
      sim_{seed},
      ring_capacity_{ring_capacity},
      rings_(num_sources),
      drain_runs_(num_sources) {
  for (auto& r : rings_) r.store(nullptr, std::memory_order_relaxed);
}

SpscQueue<CrossMessage>* Partition::ring_for(std::uint32_t source) {
  SpscQueue<CrossMessage>* ring =
      rings_[source].load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  // First message on this (source, dest) pair: create the ring. Only
  // `source`'s worker thread ever posts on this slot, but creation still
  // serializes on a mutex so ring_storage_ stays consistent.
  std::lock_guard lock{rings_mu_};
  ring = rings_[source].load(std::memory_order_relaxed);
  if (ring == nullptr) {
    ring_storage_.push_back(
        std::make_unique<SpscQueue<CrossMessage>>(ring_capacity_));
    ring = ring_storage_.back().get();
    rings_[source].store(ring, std::memory_order_release);
  }
  return ring;
}

void Partition::post(CrossMessage m) {
  SpscQueue<CrossMessage>* ring = ring_for(m.source_partition);
  if (ring->try_push(std::move(m))) return;
  // Ring full: spill to the overflow list. Deterministic order is
  // restored at drain time (messages re-join their source's run), so
  // backpressure degrades throughput, never correctness.
  overflow_posts_.fetch_add(1, std::memory_order_relaxed);
  if (overflow_counter_ != nullptr) overflow_counter_->inc();
  std::lock_guard lock{overflow_mu_};
  overflow_.push_back(std::move(m));
}

std::size_t Partition::drain_inbox() {
  const std::uint32_t S = static_cast<std::uint32_t>(rings_.size());

  // Collect each source's backlog. Rings are quiescent here (drains only
  // happen at barriers), so try_pop empties them exactly.
  for (std::uint32_t s = 0; s < S; ++s) {
    SpscQueue<CrossMessage>* ring = rings_[s].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    auto& run = drain_runs_[s];
    CrossMessage m;
    while (ring->try_pop(m)) run.push_back(std::move(m));
  }
  if (overflow_posts_.load(std::memory_order_relaxed) != 0) {
    std::lock_guard lock{overflow_mu_};
    for (auto& m : overflow_) {
      drain_runs_[m.source_partition].push_back(std::move(m));
    }
    overflow_.clear();
  }

  // Each source posts in its own execution order (source_seq ascending),
  // but deliver times are not monotone per source (links have different
  // delays), so sort each small run by (deliver_at, seq). The runs are
  // mostly sorted already, which keeps this cheap.
  std::size_t total = 0;
  std::vector<std::uint32_t> sources;
  sources.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    auto& run = drain_runs_[s];
    if (run.empty()) continue;
    std::sort(run.begin(), run.end(),
              [](const CrossMessage& a, const CrossMessage& b) {
                if (a.deliver_at != b.deliver_at)
                  return a.deliver_at < b.deliver_at;
                return a.source_seq < b.source_seq;
              });
    total += run.size();
    if (static_cast<std::int64_t>(run.size()) > ring_high_water_) {
      ring_high_water_ = static_cast<std::int64_t>(run.size());
      if (ring_high_water_gauge_ != nullptr) {
        ring_high_water_gauge_->set(ring_high_water_);
      }
    }
    sources.push_back(s);
  }
  if (total == 0) return 0;
  if (drained_ != nullptr) drained_->inc(total);

  // Merge the ordered per-source streams into the FES by
  // (deliver_at, source, seq) — the same total order the old full-inbox
  // sort produced, so cross-engine determinism is unchanged.
  std::vector<std::size_t> pos(sources.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::size_t best = sources.size();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (pos[i] >= drain_runs_[sources[i]].size()) continue;
      if (best == sources.size() ||
          drain_runs_[sources[i]][pos[i]].deliver_at <
              drain_runs_[sources[best]][pos[best]].deliver_at) {
        best = i;  // tie on deliver_at keeps the lower source (scan order)
      }
    }
    CrossMessage& m = drain_runs_[sources[best]][pos[best]++];
    sim_.schedule_at_keyed(m.deliver_at, m.key, std::move(m.fn));
  }
  for (std::uint32_t s : sources) drain_runs_[s].clear();
  return total;
}

ParallelEngine::ParallelEngine(Config config)
    : config_{config}, send_seq_(config.num_partitions) {
  if (config_.num_partitions == 0) {
    throw std::invalid_argument("ParallelEngine: need at least 1 partition");
  }
  if (config_.lookahead <= SimTime{}) {
    throw std::invalid_argument("ParallelEngine: lookahead must be positive");
  }
  const std::uint32_t P = config_.num_partitions;
  partitions_.reserve(P);
  for (std::uint32_t i = 0; i < P; ++i) {
    partitions_.push_back(std::make_unique<Partition>(
        i, config_.seed + i, P, config_.ring_capacity));
    send_seq_[i].store(0, std::memory_order_relaxed);
  }
  pair_lookahead_ns_.assign(static_cast<std::size_t>(P) * P,
                            config_.lookahead.ns());
}

ParallelEngine::~ParallelEngine() = default;

SimTime ParallelEngine::pair_lookahead(std::uint32_t from,
                                       std::uint32_t to) const {
  return SimTime::from_ns(
      pair_lookahead_ns_.at(static_cast<std::size_t>(from) *
                                num_partitions() + to));
}

void ParallelEngine::set_pair_lookahead(std::uint32_t from, std::uint32_t to,
                                        SimTime min_delay) {
  if (from >= num_partitions() || to >= num_partitions()) {
    throw std::invalid_argument("set_pair_lookahead: partition out of range");
  }
  if (min_delay < config_.lookahead) {
    throw std::invalid_argument(
        "set_pair_lookahead: pair lookahead below the engine's global "
        "lookahead (" + min_delay.to_string() + " < " +
        config_.lookahead.to_string() + ")");
  }
  pair_lookahead_ns_[static_cast<std::size_t>(from) * num_partitions() + to] =
      min_delay.ns();
  pair_reach_dirty_ = true;
}

void ParallelEngine::recompute_pair_reach() {
  const std::size_t P = num_partitions();
  // Seed with the direct channels only: the diagonal starts at "never"
  // (there is no zero-cost self channel), so after relaxation it holds the
  // shortest round-trip cycle through each partition — the earliest a
  // partition's own pending events could echo back into its inbox.
  pair_reach_ns_.assign(P * P, kNeverNs);
  for (std::size_t a = 0; a < P; ++a) {
    for (std::size_t b = 0; b < P; ++b) {
      if (a != b) pair_reach_ns_[a * P + b] = pair_lookahead_ns_[a * P + b];
    }
  }
  for (std::size_t k = 0; k < P; ++k) {
    for (std::size_t a = 0; a < P; ++a) {
      const std::int64_t ak = pair_reach_ns_[a * P + k];
      if (ak == kNeverNs) continue;
      for (std::size_t b = 0; b < P; ++b) {
        const std::int64_t kb = pair_reach_ns_[k * P + b];
        if (kb == kNeverNs) continue;
        const std::int64_t via = saturating_add(ak, kb);
        if (via < pair_reach_ns_[a * P + b]) pair_reach_ns_[a * P + b] = via;
      }
    }
  }
  pair_reach_dirty_ = false;
}

void ParallelEngine::set_telemetry(telemetry::Registry* registry) {
  telemetry_ = registry;
  sync_wait_ns_.clear();
  window_advance_ = nullptr;
  pair_messages_.clear();
  if (registry == nullptr) {
    for (auto& p : partitions_) p->set_telemetry(nullptr, nullptr, nullptr);
    return;
  }
  auto* rounds = registry->counter("pdes.sync_rounds");
  auto* crossings = registry->counter("pdes.cross_messages");
  auto* executed = registry->counter("pdes.events_executed");
  auto* overhead = registry->counter("pdes.modeled_overhead_us");
  auto* overflow_total = registry->counter("pdes.overflow_posts");
  registry->add_flusher(
      [this, rounds, crossings, executed, overhead, overflow_total] {
        rounds->set(stats_.sync_rounds);
        crossings->set(stats_.cross_messages);
        std::uint64_t events = 0;
        std::uint64_t overflows = 0;
        for (auto& p : partitions_) {
          events += p->sim().events_executed();
          overflows += p->overflow_posts();
        }
        executed->set(events);
        overflow_total->set(overflows);
        overhead->set(
            static_cast<std::uint64_t>(stats_.modeled_overhead_seconds * 1e6));
      });
  window_advance_ = registry->histogram("pdes.window_advance_ns");
  const std::size_t pairs =
      static_cast<std::size_t>(num_partitions()) * num_partitions();
  pair_messages_ = std::vector<std::atomic<telemetry::Counter*>>(pairs);
  for (auto& c : pair_messages_) c.store(nullptr, std::memory_order_relaxed);
  sync_wait_ns_.reserve(partitions_.size());
  for (std::uint32_t i = 0; i < num_partitions(); ++i) {
    const std::string prefix = "pdes.p" + std::to_string(i);
    partitions_[i]->sim().set_telemetry(registry, prefix);
    partitions_[i]->set_telemetry(
        registry->gauge(prefix + ".ring_high_water"),
        registry->counter(prefix + ".inbox_drained"),
        registry->counter(prefix + ".overflow_posts"));
    sync_wait_ns_.push_back(registry->counter(prefix + ".sync_wait_ns"));
  }
}

telemetry::Counter* ParallelEngine::pair_counter(std::uint32_t from,
                                                 std::uint32_t to) {
  const std::size_t idx =
      static_cast<std::size_t>(from) * num_partitions() + to;
  telemetry::Counter* c = pair_messages_[idx].load(std::memory_order_acquire);
  if (c == nullptr) {
    // Interning makes concurrent first-use idempotent: both threads get
    // the same instrument pointer back.
    c = telemetry_->counter("pdes.pair.p" + std::to_string(from) + "_p" +
                            std::to_string(to) + ".messages");
    pair_messages_[idx].store(c, std::memory_order_release);
  }
  return c;
}

void ParallelEngine::send_cross(std::uint32_t from, std::uint32_t to,
                                SimTime deliver_at, std::uint64_t key,
                                EventFn fn) {
  Partition& src = *partitions_.at(from);
  const std::int64_t pair_ns =
      pair_lookahead_ns_.at(static_cast<std::size_t>(from) * num_partitions() +
                            to);
  if (pair_ns == kNeverNs ||
      deliver_at.ns() < saturating_add(src.sim().now().ns(), pair_ns)) {
    throw std::logic_error(
        "send_cross: delivery violates lookahead (deliver_at=" +
        deliver_at.to_string() + ", now=" + src.sim().now().to_string() +
        ", pair lookahead=" +
        (pair_ns == kNeverNs ? std::string("infinite (no channel)")
                             : SimTime::from_ns(pair_ns).to_string()) +
        ")");
  }
  const std::uint64_t seq =
      send_seq_[from].fetch_add(1, std::memory_order_relaxed);
  partitions_.at(to)->post(
      CrossMessage{deliver_at, key, from, seq, std::move(fn)});
  round_messages_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr && !pair_messages_.empty()) {
    pair_counter(from, to)->inc();
  }
}

void ParallelEngine::spin_overhead(double microseconds) {
  if (microseconds <= 0.0) return;
  if (config_.deterministic_overhead) {
    // Virtual accounting only: the modeled cost is reported, not paid in
    // wall time, so host scheduling jitter cannot leak into the figures.
    stats_.modeled_overhead_seconds += microseconds / 1e6;
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double, std::micro>(microseconds);
  while (std::chrono::steady_clock::now() - start < budget) {
    // Busy-wait: models a blocking MPI collective on the critical path.
  }
  stats_.modeled_overhead_seconds += microseconds / 1e6;
}

void ParallelEngine::run_until(SimTime end) {
  const std::uint32_t P = num_partitions();
  const bool per_pair = config_.window_mode == WindowMode::per_pair;
  if (per_pair && pair_reach_dirty_) recompute_pair_reach();

  std::atomic<std::int64_t> min_next{kNeverNs};
  // Published by each partition before the window barrier, read by every
  // partition after it (the barrier orders the accesses).
  std::vector<std::int64_t> next_ns(P, kNeverNs);
  SimTime global_window_end;
  bool done = false;

  auto on_window_computed = [&]() noexcept {
    // Runs on exactly one thread while the others wait in the barrier:
    // decides run termination (and, in global mode, the shared window) and
    // models the MPI synchronization cost.
    const std::int64_t next = min_next.load(std::memory_order_relaxed);
    if (next == kNeverNs || SimTime::from_ns(next) >= end) {
      done = true;
    } else if (!per_pair) {
      global_window_end = SimTime::from_ns(next) + config_.lookahead;
      if (global_window_end > end) global_window_end = end;
    }
    const std::uint64_t msgs =
        round_messages_.exchange(0, std::memory_order_relaxed);
    stats_.cross_messages += msgs;
    telemetry::trace_instant("pdes.sync_round",
                             static_cast<std::int64_t>(msgs));
    // The terminating round executes no window: a real MPI run would not
    // pay a collective there, so charging it would inflate the modeled
    // overhead by one round per run_until call (Figure 1's denominator).
    if (!done) {
      ++stats_.sync_rounds;
      spin_overhead(config_.round_overhead_us +
                    config_.per_message_overhead_us *
                        static_cast<double>(msgs));
    }
    min_next.store(kNeverNs, std::memory_order_relaxed);
  };

  std::barrier window_barrier(static_cast<std::ptrdiff_t>(P),
                              on_window_computed);
  std::barrier round_barrier(static_cast<std::ptrdiff_t>(P));

  std::vector<std::exception_ptr> errors(P);

  telemetry::Counter* const* wait_counters =
      sync_wait_ns_.size() == P ? sync_wait_ns_.data() : nullptr;

  auto worker = [&](std::uint32_t idx) {
    Partition& part = *partitions_[idx];
    if (auto* trace = telemetry::TraceSession::active()) {
      trace->set_thread_name("partition " + std::to_string(idx));
    }
    bool failed = false;
    for (;;) {
      std::int64_t local_next = kNeverNs;
      if (!failed) {
        try {
          part.drain_inbox();
          if (part.sim().events_pending() > 0) {
            local_next = part.sim().next_event_time().ns();
          }
        } catch (...) {
          errors[idx] = std::current_exception();
          failed = true;
        }
      }
      next_ns[idx] = local_next;
      // Fold into the global minimum (drives termination and the global-
      // mode window). A failed partition reports "never" so the run winds
      // down without deadlocking the barriers.
      std::int64_t cur = min_next.load(std::memory_order_relaxed);
      while (local_next < cur &&
             !min_next.compare_exchange_weak(cur, local_next,
                                             std::memory_order_relaxed)) {
      }
      {
        const auto wait_start = std::chrono::steady_clock::now();
        window_barrier.arrive_and_wait();
        const auto waited = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_start)
                .count());
        sync_wait_ns_total_.fetch_add(waited, std::memory_order_relaxed);
        if (wait_counters != nullptr) wait_counters[idx]->inc(waited);
      }
      if (done) break;
      if (!failed) {
        try {
          SimTime window_end = end;
          if (per_pair) {
            // This partition's private horizon: nothing can arrive before
            // next_ns[j] + D[j][idx] for any j, where D is the closed
            // lookahead matrix — chains through idle partitions and
            // round-trips of idx's own events included (DESIGN.md §10).
            // Unreachable pairs and idle partitions do not constrain it.
            for (std::uint32_t j = 0; j < P; ++j) {
              if (next_ns[j] == kNeverNs) continue;
              const std::int64_t lah =
                  pair_reach_ns_[static_cast<std::size_t>(j) * P + idx];
              if (lah == kNeverNs) continue;
              const std::int64_t bound = saturating_add(next_ns[j], lah);
              if (bound < window_end.ns()) window_end = SimTime::from_ns(bound);
            }
          } else {
            window_end = global_window_end;
          }
          telemetry::Span window_span{"pdes.window"};
          const std::int64_t before = part.sim().now().ns();
          part.sim().run_until(window_end);
          if (window_advance_ != nullptr && window_end.ns() > before) {
            window_advance_->record(
                static_cast<std::uint64_t>(window_end.ns() - before));
          }
        } catch (...) {
          errors[idx] = std::current_exception();
          failed = true;
        }
      }
      round_barrier.arrive_and_wait();
    }
    if (!failed) {
      // Advance the clock to the requested end for a consistent epilogue.
      part.sim().run_until(end);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t i = 0; i < P; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  stats_.events_executed = 0;
  for (auto& p : partitions_) {
    stats_.events_executed += p->sim().events_executed();
  }
  stats_.sync_wait_seconds =
      static_cast<double>(sync_wait_ns_total_.load(std::memory_order_relaxed)) /
      1e9;

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace esim::sim
