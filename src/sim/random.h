// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in ElephantSim (traffic arrival, flow sizes, ECMP
// perturbation, ML weight initialisation, ...) flows through `Rng`, a
// xoshiro256++ generator seeded via SplitMix64. Identical seeds produce
// identical simulations on every platform, which the test suite relies on.
#pragma once

#include <cstdint>

namespace esim::sim {

/// xoshiro256++ PRNG (Blackman & Vigna). Small, fast, and with 256 bits of
/// state — far more than the simulation needs, and trivially seedable from a
/// single 64-bit value through SplitMix64 so distinct seeds give independent
/// streams.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds yield statistically independent
  /// streams; the default gives a fixed, documented stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  /// the result is exactly uniform.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponentially distributed value with the given mean (rate = 1/mean).
  /// Used for Poisson inter-arrival gaps.
  double exponential(double mean);

  /// Standard normal via Box–Muller (used by ML weight initialisation).
  double normal();

  /// Normal with explicit mean and standard deviation.
  double normal(double mean, double stddev);

  /// Pareto-distributed value with shape `alpha` and scale `xm` (heavy tail
  /// for flow sizes).
  double pareto(double xm, double alpha);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Forks a child generator whose stream is independent of (and
  /// deterministically derived from) this one. Used to give each component
  /// its own stream so adding a component never perturbs another's draws.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace esim::sim
