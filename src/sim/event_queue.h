// The future-event set: a 4-ary min-heap keyed on (time, key, sequence
// number).
//
// `key` is an optional caller-supplied priority (0 for ordinary events)
// that orders same-time events by *content* rather than scheduling
// history: link deliveries use the packet id, so two packets reaching a
// switch at the same instant enqueue in the same order under every engine
// — sequential or PDES at any partition count — even though their FES
// insertion sequences differ. The insertion sequence number remains the
// final tie-break, guaranteeing a total, deterministic order among events
// with equal (time, key); zero-key ties break in scheduling order,
// matching the behaviour of OMNeT++'s FES that the paper's prototype
// extends. That (time, key, seq) total order is a determinism contract:
// ParallelEngine::drain_inbox relies on it to make cross-partition message
// delivery reproducible, and the differential harness (src/check) verifies
// it digest-for-digest across engines, so any FES rework must preserve it
// bit-for-bit.
//
// Layout: heap entries are 24-byte (time, seq, slot, generation) records —
// small enough that a 4-ary heap keeps parent and children within one or
// two cache lines — while the callback payloads live in a side pool of
// generation-tagged slots. A handle encodes (slot, generation); cancelling
// bumps the slot's generation, which simultaneously invalidates the handle,
// marks the heap entry dead (its recorded generation no longer matches),
// and frees the slot for reuse. Cancellation destroys the closure
// immediately — cancel-heavy TCP timer churn never pins dead closures —
// and the dead 24-byte heap entries are pruned eagerly at the top and
// compacted wholesale when they outnumber the live ones.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace esim::sim {

/// Opaque handle identifying a scheduled event, usable to cancel it.
struct EventHandle {
  std::uint64_t id = 0;
  /// True if this handle refers to a real scheduled event.
  constexpr bool valid() const { return id != 0; }
  constexpr bool operator==(const EventHandle&) const = default;
};

/// An event popped from the queue, ready to execute.
struct Event {
  SimTime time;
  std::uint64_t id = 0;
  /// FES insertion sequence — the tie-break that ordered this event among
  /// same-(time, key) peers. Exposed so the determinism harness can
  /// fingerprint pop order including tie resolution.
  std::uint64_t seq = 0;
  EventFn fn;
};

/// 4-ary min-heap of events ordered by (time, key, insertion sequence).
///
/// Not thread-safe: in parallel runs each partition owns its own queue.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `fn` at absolute time `t` with key 0. Returns a handle for
  /// cancellation.
  EventHandle schedule(SimTime t, EventFn fn) {
    return schedule(t, 0, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` with an explicit same-time
  /// priority key (smaller keys execute first; 0 precedes all keyed
  /// events). Keys must be engine-invariant values (e.g. packet ids) —
  /// that is the whole point.
  EventHandle schedule(SimTime t, std::uint64_t key, EventFn fn);

  /// Cancels a previously scheduled event, destroying its closure
  /// immediately. Returns false if the event already executed or was
  /// already cancelled.
  bool cancel(EventHandle h);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  SimTime next_time();

  /// Pops the earliest live event, or nullopt when empty.
  std::optional<Event> pop();

  /// Total events ever scheduled (for performance accounting).
  std::uint64_t total_scheduled() const { return total_scheduled_; }

  /// The insertion sequence number the NEXT schedule() will consume.
  /// Sequence numbers are the determinism contract's same-(time, key)
  /// tie-break, so replay machinery (src/memo) keys recorded pop streams
  /// to this counter.
  std::uint64_t next_seq() const { return next_seq_; }

  /// True while `h` refers to a scheduled-but-not-yet-executed event.
  bool live(EventHandle h) const {
    const auto slot = static_cast<std::uint32_t>(h.id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(h.id >> 32);
    return h.valid() && slot < slots_.size() && slots_[slot].gen == gen;
  }

  /// The FES insertion sequence of a live event; 0 when `h` is dead
  /// (executed, cancelled, or never valid). Sequences start at 1, so 0 is
  /// unambiguous.
  std::uint64_t seq_of(EventHandle h) const {
    const auto slot = static_cast<std::uint32_t>(h.id & 0xffffffffu);
    return live(h) ? slots_[slot].seq : 0;
  }

  /// Visits every live (non-cancelled) pending event as f(time, key), in
  /// unspecified (heap) order. O(heap entries); dead entries are skipped.
  template <typename F>
  void for_each_pending(F&& f) const {
    for (const Entry& e : heap_) {
      if (!entry_dead(e)) f(e.time, e.key);
    }
  }

  /// Commutative (order-independent) fingerprint of the live pending
  /// (time, key) multiset. Two queues holding the same pending events —
  /// regardless of scheduling history, cancellations, or heap layout —
  /// fingerprint identically. Insertion sequences are deliberately
  /// excluded (they are history, not state).
  std::uint64_t pending_fingerprint() const;

  // --- accounting snapshot / restore (the memoization contract) --------
  //
  // Generation-tagged slots make full FES state capture impossible by
  // design: closures are move-only and cancellation destroys them
  // immediately. What CAN be snapshotted and restored is the queue's
  // *accounting* — the (next_seq, total_scheduled) counters that drive
  // deterministic tie-breaking — together with a fingerprint of the live
  // pending set that pins down when a restore is sound.
  //
  // The contract across cancellations:
  //
  //   * snapshot_accounting() never blocks later operations; it is a pure
  //     read.
  //   * restore_accounting(snap) requires that the queue's live pending
  //     multiset is EXACTLY the snapshot's — same live count, same
  //     (time, key) fingerprint — and that every live event predates the
  //     snapshot (insertion seq < snap.next_seq). In that state, every
  //     event scheduled after the snapshot has been consumed (executed or
  //     cancelled), so rewinding next_seq/total_scheduled cannot create a
  //     duplicate sequence among live events and future pops order
  //     exactly as if the interval never happened. Any violation throws
  //     std::logic_error and leaves the queue untouched.
  //   * Slot GENERATIONS are never restored: they are monotonic for the
  //     queue's lifetime. A handle issued between snapshot and restore
  //     stays dead forever, even though a post-restore schedule() may
  //     reuse both its slot and its sequence number — handle identity is
  //     (slot, generation), so the recycled slot's bumped generation keeps
  //     old handles from ever matching (tested in event_queue_test.cc,
  //     ChurnThenRestore).
  //   * advance_accounting(n) is the fast-forward dual: it declares that
  //     `n` schedules happened logically (a memoized phase replay) without
  //     materializing them, keeping subsequent sequence numbers — and
  //     therefore same-(time, key) tie-breaks — bit-identical to a run
  //     that executed the phase live.

  /// Accounting state captured by snapshot_accounting().
  struct AccountingSnapshot {
    std::uint64_t next_seq = 0;
    std::uint64_t total_scheduled = 0;
    std::size_t live = 0;
    std::uint64_t pending = 0;  ///< pending_fingerprint() at capture

    bool operator==(const AccountingSnapshot&) const = default;
  };

  /// Captures the accounting counters and the pending-set fingerprint.
  AccountingSnapshot snapshot_accounting() const {
    return AccountingSnapshot{next_seq_, total_scheduled_, live_,
                              pending_fingerprint()};
  }

  /// Rewinds the accounting counters to `snap`. See the contract above;
  /// throws std::logic_error unless the live pending multiset matches the
  /// snapshot and contains no post-snapshot events.
  void restore_accounting(const AccountingSnapshot& snap);

  /// Declares `scheduled_delta` logical schedules without materializing
  /// them: next_seq and total_scheduled advance in lockstep (each
  /// schedule() consumes exactly one of each).
  void advance_accounting(std::uint64_t scheduled_delta) {
    next_seq_ += scheduled_delta;
    total_scheduled_ += scheduled_delta;
  }

  /// Heap entries currently held, live + dead (diagnostic: bounds the
  /// memory retained by cancelled-but-not-yet-compacted events).
  std::size_t heap_entries() const { return heap_.size(); }

  /// Drops all pending events.
  void clear();

  /// TEST-ONLY (determinism harness): when enabled, the same-time ordering
  /// is reversed — keyed events break ties in *descending* key order and
  /// zero-key ties in *reverse* insertion order — a deliberate violation
  /// of the determinism contract, used by tools/esim_diffcheck to prove
  /// the differential harness catches ordering bugs. Must be set before
  /// the first schedule() (flipping it later would corrupt the heap
  /// invariant); throws otherwise.
  void debug_set_invert_tiebreak(bool on);

 private:
  /// 32 bytes; the closure lives in slots_[slot] while gen matches.
  struct Entry {
    SimTime time;
    std::uint64_t key;  // same-time priority; 0 = ordinary event
    std::uint64_t seq;  // insertion order; tie-break for equal (time, key)
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Callback storage. `gen` counts lifetimes: it is the generation of the
  /// current occupant while the slot is live, and the generation the *next*
  /// occupant will get while the slot sits on the free list. A handle or
  /// heap entry is live iff its recorded gen equals the slot's.
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;  // insertion seq of the current occupant
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNpos;
  };

  static constexpr std::uint32_t kNpos = 0xffffffffu;
  static constexpr std::size_t kArity = 4;
  /// Compaction below this size isn't worth the rebuild.
  static constexpr std::size_t kCompactMin = 64;

  bool later(const Entry& a, const Entry& b) const {
    if (a.time != b.time) return a.time > b.time;
    // Same-time events order by engine-invariant key first (packet ids on
    // link deliveries), then insertion order (the determinism contract).
    // The harness's injected ordering bug reverses the whole same-time
    // ordering, key included.
    if (a.key != b.key) {
      return debug_invert_tiebreak_ ? a.key < b.key : a.key > b.key;
    }
    return debug_invert_tiebreak_ ? a.seq < b.seq : a.seq > b.seq;
  }

  static constexpr std::uint64_t handle_id(std::uint32_t slot,
                                           std::uint32_t gen) {
    // gen >= 1, so the id is never 0 (the null-handle sentinel).
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }

  bool entry_dead(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  std::uint32_t acquire_slot(EventFn fn);
  /// Invalidates handles/entries for `slot` and recycles it.
  void release_slot(std::uint32_t slot);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes the root entry (swap-with-last + sift).
  void remove_top();
  /// Removes cancelled entries from the top of the heap.
  void prune_top();
  /// Rewrites the heap without its dead entries when they dominate.
  void maybe_compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::size_t live_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t total_scheduled_ = 0;
  bool debug_invert_tiebreak_ = false;
};

}  // namespace esim::sim
