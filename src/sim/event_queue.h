// The future-event set: a binary min-heap keyed on (time, sequence number).
//
// The sequence number guarantees a total, deterministic order even among
// events scheduled for the same instant: ties break in scheduling order,
// matching the behaviour of OMNeT++'s FES that the paper's prototype
// extends. Cancellation is lazy — cancelled entries stay in the heap and are
// discarded on pop — because the dominant cancellers (TCP retransmission
// timers) cancel events that are near the top anyway.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace esim::sim {

/// Opaque handle identifying a scheduled event, usable to cancel it.
struct EventHandle {
  std::uint64_t id = 0;
  /// True if this handle refers to a real scheduled event.
  constexpr bool valid() const { return id != 0; }
  constexpr bool operator==(const EventHandle&) const = default;
};

/// An event popped from the queue, ready to execute.
struct Event {
  SimTime time;
  std::uint64_t id = 0;
  std::function<void()> fn;
};

/// Binary min-heap of events ordered by (time, insertion sequence).
///
/// Not thread-safe: in parallel runs each partition owns its own queue.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `fn` at absolute time `t`. Returns a handle for cancellation.
  EventHandle schedule(SimTime t, std::function<void()> fn);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already executed or was already cancelled.
  bool cancel(EventHandle h);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live events.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  SimTime next_time();

  /// Pops the earliest live event, or nullopt when empty.
  std::optional<Event> pop();

  /// Total events ever scheduled (for performance accounting).
  std::uint64_t total_scheduled() const { return next_id_ - 1; }

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; tie-break for equal times
    std::uint64_t id;
    std::function<void()> fn;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes cancelled entries from the top of the heap.
  void prune_top();

  std::vector<Entry> heap_;
  // Ids currently scheduled and not cancelled. Heap entries whose id is
  // absent from this set are dead and skipped on pop.
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_id_ = 1;
};

}  // namespace esim::sim
