// SimTime: strongly typed simulation time with nanosecond resolution.
//
// ElephantSim never uses floating-point clocks for simulation logic: all
// event ordering is exact 64-bit integer arithmetic, which keeps runs
// bit-for-bit deterministic across platforms. Floating-point conversions are
// provided only at the reporting boundary (`to_seconds`).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace esim::sim {

/// A point in (or span of) virtual time, stored as signed 64-bit
/// nanoseconds. The same type serves as both instant and duration, as is
/// conventional in discrete-event simulators; arithmetic never saturates,
/// so callers must not exceed ~292 years of virtual time.
class SimTime {
 public:
  /// Zero time (the epoch of every simulation).
  constexpr SimTime() = default;

  /// Constructs from a raw nanosecond count.
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime{ns}; }
  /// Constructs from microseconds.
  static constexpr SimTime from_us(std::int64_t us) {
    return SimTime{us * 1000};
  }
  /// Constructs from milliseconds.
  static constexpr SimTime from_ms(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  /// Constructs from whole seconds.
  static constexpr SimTime from_sec(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }
  /// Constructs from fractional seconds (reporting/config boundary only).
  static constexpr SimTime from_seconds_f(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  /// The largest representable time; used as "never".
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  /// Raw nanosecond count.
  constexpr std::int64_t ns() const { return ns_; }
  /// Value in fractional microseconds.
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  /// Value in fractional seconds.
  constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr bool operator==(const SimTime&) const = default;
  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  /// Scales a duration by an integer factor.
  constexpr SimTime operator*(std::int64_t k) const {
    return SimTime{ns_ * k};
  }
  /// Scales a duration by a real factor (rounds toward zero).
  constexpr SimTime scaled(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  /// Integer division of two durations (e.g. how many windows fit).
  constexpr std::int64_t operator/(SimTime o) const { return ns_ / o.ns_; }

  /// Human-readable rendering with an adaptive unit, e.g. "12.5us".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace esim::sim
