// Conservative parallel discrete-event simulation (PDES).
//
// This reproduces the *mechanism* whose cost Figure 1 of the paper
// measures: the network is split into partitions, each with its own event
// queue and worker thread, synchronized with a window-barrier ("YAWNS")
// algorithm. Events in [window_start, window_end) are causally independent
// across partitions because every cross-partition interaction carries at
// least `lookahead` of latency (the minimum cross-partition link delay), so
// window_end = min(next event time over all partitions) + lookahead is safe.
//
// The paper ran OMNeT++'s MPI-based PDES across 1–4 physical machines. We
// have threads, not a cluster, so inter-machine messaging cost is *modeled*:
// each sync round pays a configurable wall-clock overhead (base cost per
// round plus a per-cross-message cost), spun on the coordinator thread.
// With the overhead set to zero the engine is a plain shared-memory PDES.
// DESIGN.md §1 documents this substitution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace esim::telemetry {
class Counter;
class Gauge;
class Registry;
}

namespace esim::sim {

/// A timestamped closure crossing a partition boundary.
struct CrossMessage {
  SimTime deliver_at;
  /// FES same-time priority key, preserved into the target partition's
  /// event queue (packet id for link deliveries; see event_queue.h).
  std::uint64_t key = 0;
  std::uint32_t source_partition = 0;
  std::uint64_t source_seq = 0;  // per-source counter; makes drains sortable
  EventFn fn;
};

/// One partition of a parallel run: a full sequential Simulator plus an
/// inbox for messages arriving from other partitions.
class Partition {
 public:
  /// Creates partition `index` with RNG seed `seed`.
  Partition(std::uint32_t index, std::uint64_t seed)
      : index_{index}, sim_{seed} {}

  /// This partition's index within the engine.
  std::uint32_t index() const { return index_; }

  /// The sequential engine that owns this partition's components.
  Simulator& sim() { return sim_; }

  /// Thread-safe: enqueues a message from another partition. Called by
  /// ParallelEngine::send_cross.
  void post(CrossMessage m);

  /// Drains the inbox into the local event queue, in deterministic order
  /// (by deliver time, then source partition, then per-source sequence).
  /// Returns the number of messages drained. Must be called only at a
  /// barrier (no concurrent post).
  std::size_t drain_inbox();

  /// Publishes inbox depth / drain totals (installed by
  /// ParallelEngine::set_telemetry; both null when telemetry is off).
  void set_telemetry(telemetry::Gauge* inbox_depth,
                     telemetry::Counter* drained) {
    inbox_depth_ = inbox_depth;
    drained_ = drained;
  }

 private:
  std::uint32_t index_;
  Simulator sim_;
  std::mutex inbox_mu_;
  std::vector<CrossMessage> inbox_;
  telemetry::Gauge* inbox_depth_ = nullptr;  ///< mailbox high-water mark
  telemetry::Counter* drained_ = nullptr;
};

/// Window-barrier conservative PDES engine.
class ParallelEngine {
 public:
  struct Config {
    /// Number of partitions (= worker threads).
    std::uint32_t num_partitions = 2;
    /// Minimum latency of any cross-partition interaction. Correctness
    /// requires every cross-partition send to be delivered at least this
    /// far in the future; send_cross enforces it.
    SimTime lookahead = SimTime::from_us(1);
    /// Modeled inter-machine synchronization cost added (by spinning wall
    /// clock) once per sync round. Zero for shared-memory runs.
    double round_overhead_us = 0.0;
    /// Modeled cost per cross-partition message (serialization + wire),
    /// added per round multiplied by the number of messages that round.
    double per_message_overhead_us = 0.0;
    /// RNG seed; partition i uses seed + i.
    std::uint64_t seed = 1;
  };

  /// Aggregate statistics of a run, for benchmarking.
  struct Stats {
    std::uint64_t sync_rounds = 0;
    std::uint64_t cross_messages = 0;
    std::uint64_t events_executed = 0;
    double modeled_overhead_seconds = 0.0;  // wall time spent in the model
  };

  explicit ParallelEngine(Config config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Accessor for partition `i` (valid for the engine's lifetime).
  Partition& partition(std::uint32_t i) { return *partitions_[i]; }

  /// Number of partitions.
  std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(partitions_.size());
  }

  /// The conservative lookahead this engine was configured with.
  SimTime lookahead() const { return config_.lookahead; }

  /// Sends `fn` for execution in partition `to` at virtual time
  /// `deliver_at`. Must satisfy deliver_at >= sender's now + lookahead;
  /// violations throw (they would break conservative causality).
  void send_cross(std::uint32_t from, std::uint32_t to, SimTime deliver_at,
                  EventFn fn) {
    send_cross(from, to, deliver_at, 0, std::move(fn));
  }

  /// As above, carrying an FES same-time priority key into the target
  /// partition's event queue (packet id for link deliveries).
  void send_cross(std::uint32_t from, std::uint32_t to, SimTime deliver_at,
                  std::uint64_t key, EventFn fn);

  /// Runs all partitions to virtual time `end` using worker threads.
  /// Blocking; may be called repeatedly to extend a run.
  void run_until(SimTime end);

  /// Statistics accumulated across run_until calls.
  const Stats& stats() const { return stats_; }

  /// Installs a metrics registry (or nullptr to disable). Publishes the
  /// engine aggregates (`pdes.sync_rounds`, `.cross_messages`,
  /// `.events_executed`, `.modeled_overhead_us`) via a snapshot flusher,
  /// installs per-partition engine metrics under `pdes.p<i>.*` (event
  /// accounting, mailbox depth, messages drained, wall nanoseconds spent
  /// waiting at the window barrier), and — while a telemetry TraceSession
  /// is active — emits one `pdes.window` span per partition per sync
  /// round plus a `pdes.sync_round` instant per round. Call before
  /// building components in the partitions.
  void set_telemetry(telemetry::Registry* registry);

  /// The installed registry, or nullptr.
  telemetry::Registry* telemetry() const { return telemetry_; }

 private:
  void spin_overhead(double microseconds);

  Config config_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::atomic<std::uint64_t>> send_seq_;
  std::atomic<std::uint64_t> round_messages_{0};
  Stats stats_;
  telemetry::Registry* telemetry_ = nullptr;
  std::vector<telemetry::Counter*> sync_wait_ns_;  ///< per partition
};

}  // namespace esim::sim
