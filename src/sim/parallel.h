// Conservative parallel discrete-event simulation (PDES).
//
// This reproduces the *mechanism* whose cost Figure 1 of the paper
// measures: the network is split into partitions, each with its own event
// queue and worker thread, synchronized with a window-barrier ("YAWNS")
// algorithm. Two window policies are supported (Config::window_mode):
//
//   * WindowMode::global — the paper-faithful baseline. Events in
//     [window_start, window_end) are causally independent across
//     partitions because every cross-partition interaction carries at
//     least `lookahead` (the minimum over ALL partition pairs), so
//     window_end = min(next event time over all partitions) + lookahead.
//     Every partition executes the same window; the slowest-coupled pair
//     throttles everyone.
//
//   * WindowMode::per_pair — the scale-out policy. Each ordered partition
//     pair (j, i) carries its own lookahead L[j][i] (the minimum delay of
//     any j->i link; "infinite" when no such link exists). The engine
//     closes L under composition — D = all-pairs shortest paths over the
//     L graph, so D[j][i] is the minimum total delay of ANY causal chain
//     j -> ... -> i, including chains through currently idle partitions
//     and round-trip cycles back to i itself — and each partition computes
//     its own horizon per round:
//         window_end[i] = min over j of (next_event_time[j] + D[j][i])
//     Safety: every event anywhere descends from some partition j's
//     currently pending events (times >= next_event_time[j]), and each
//     cross hop k->m on the way to i adds at least L[k][m]; so nothing
//     can arrive at i before window_end[i]. Loosely coupled partitions
//     advance past tightly coupled ones' horizon instead of marching in
//     lockstep (DESIGN.md §10 gives the full argument).
//
// Cross-partition messages travel through bounded lock-free SPSC rings,
// one per (source, dest) pair (sim/spsc_queue.h), allocated lazily on
// first use: post() is wait-free on the steady state and drain_inbox()
// merges the per-source streams instead of re-sorting one shared inbox.
//
// The paper ran OMNeT++'s MPI-based PDES across 1–4 physical machines. We
// have threads, not a cluster, so inter-machine messaging cost is *modeled*:
// each sync round pays a configurable overhead (base cost per round plus a
// per-cross-message cost), either spun on the coordinator thread's wall
// clock (legacy, Figure 1) or accounted deterministically without spinning
// (Config::deterministic_overhead — scaling benches use this so host
// scheduling jitter cannot distort the curves). With the overhead set to
// zero the engine is a plain shared-memory PDES. DESIGN.md §1 documents
// this substitution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.h"
#include "sim/spsc_queue.h"
#include "sim/time.h"

namespace esim::telemetry {
class Counter;
class Gauge;
class Histogram;
class Registry;
}

namespace esim::sim {

/// A timestamped closure crossing a partition boundary.
struct CrossMessage {
  SimTime deliver_at;
  /// FES same-time priority key, preserved into the target partition's
  /// event queue (packet id for link deliveries; see event_queue.h).
  std::uint64_t key = 0;
  std::uint32_t source_partition = 0;
  std::uint64_t source_seq = 0;  // per-source counter; makes drains sortable
  EventFn fn;
};

/// One partition of a parallel run: a full sequential Simulator plus
/// per-source-partition SPSC inbound rings for messages arriving from
/// other partitions.
class Partition {
 public:
  /// Creates partition `index` with RNG seed `seed`, receiving from up to
  /// `num_sources` source partitions through rings of `ring_capacity`.
  Partition(std::uint32_t index, std::uint64_t seed,
            std::uint32_t num_sources, std::size_t ring_capacity);

  /// This partition's index within the engine.
  std::uint32_t index() const { return index_; }

  /// The sequential engine that owns this partition's components.
  Simulator& sim() { return sim_; }

  /// Enqueues a message from another partition (called by
  /// ParallelEngine::send_cross on the source partition's worker thread).
  /// Wait-free on the steady state: one SPSC push into the
  /// (source, this) ring. A full ring spills to a mutexed overflow list —
  /// counted, never dropped, and drained into the same deterministic
  /// order.
  void post(CrossMessage m);

  /// Drains all inbound rings (plus any overflow) into the local event
  /// queue in deterministic order — by (deliver time, source partition,
  /// per-source sequence) — by sorting each source's small batch and
  /// merging the per-source streams. Returns the number of messages
  /// drained. Must be called only at a barrier (no concurrent post).
  std::size_t drain_inbox();

  /// Messages that bypassed the rings because one was full (cumulative).
  std::uint64_t overflow_posts() const {
    return overflow_posts_.load(std::memory_order_relaxed);
  }

  /// Installs telemetry instruments (all null when telemetry is off):
  /// `ring_high_water` — max per-source backlog observed at any drain,
  /// `drained` — total messages drained, `overflow` — ring-full spills.
  void set_telemetry(telemetry::Gauge* ring_high_water,
                     telemetry::Counter* drained,
                     telemetry::Counter* overflow) {
    ring_high_water_gauge_ = ring_high_water;
    drained_ = drained;
    overflow_counter_ = overflow;
  }

 private:
  SpscQueue<CrossMessage>* ring_for(std::uint32_t source);

  std::uint32_t index_;
  Simulator sim_;
  std::size_t ring_capacity_;

  // rings_[s] is written once by source partition s's thread (lazy
  // creation under rings_mu_, published with a release store) and read by
  // this partition's thread at drains.
  std::vector<std::atomic<SpscQueue<CrossMessage>*>> rings_;
  std::vector<std::unique_ptr<SpscQueue<CrossMessage>>> ring_storage_;
  std::mutex rings_mu_;

  // Rare path: messages posted while the pair's ring was full.
  std::mutex overflow_mu_;
  std::vector<CrossMessage> overflow_;
  std::atomic<std::uint64_t> overflow_posts_{0};

  // Drain scratch, reused across rounds (no steady-state allocation).
  std::vector<std::vector<CrossMessage>> drain_runs_;
  std::int64_t ring_high_water_ = 0;

  telemetry::Gauge* ring_high_water_gauge_ = nullptr;
  telemetry::Counter* drained_ = nullptr;
  telemetry::Counter* overflow_counter_ = nullptr;

  friend class ParallelEngine;
};

/// Window-barrier conservative PDES engine.
class ParallelEngine {
 public:
  /// Window synchronization policy; see the file comment.
  enum class WindowMode : std::uint8_t {
    global,    ///< one window from the global minimum (paper-faithful)
    per_pair,  ///< per-partition horizons from per-pair lookahead
  };

  struct Config {
    /// Number of partitions (= worker threads).
    std::uint32_t num_partitions = 2;
    /// Minimum latency of any cross-partition interaction, and the default
    /// for every pair until set_pair_lookahead raises it. Correctness
    /// requires every cross-partition send to be delivered at least the
    /// pair's lookahead in the future; send_cross enforces it.
    SimTime lookahead = SimTime::from_us(1);
    /// Window policy. `global` reproduces the paper's YAWNS barrier;
    /// `per_pair` lets loosely coupled partitions run ahead.
    WindowMode window_mode = WindowMode::global;
    /// Capacity of each (source, dest) SPSC ring; a full ring spills to a
    /// mutexed overflow list (correct but slower).
    std::size_t ring_capacity = 1024;
    /// Modeled inter-machine synchronization cost added once per sync
    /// round. Zero for shared-memory runs.
    double round_overhead_us = 0.0;
    /// Modeled cost per cross-partition message (serialization + wire),
    /// added per round multiplied by the number of messages that round.
    double per_message_overhead_us = 0.0;
    /// When false (legacy), the modeled overhead is spun on the wall
    /// clock, so it shows up in wall-clock figures (Figure 1's model).
    /// When true, it is accounted into stats().modeled_overhead_seconds
    /// deterministically without spinning — scaling benches use this so
    /// host scheduling jitter cannot distort events/s.
    bool deterministic_overhead = false;
    /// RNG seed; partition i uses seed + i.
    std::uint64_t seed = 1;
  };

  /// Aggregate statistics of a run, for benchmarking.
  struct Stats {
    std::uint64_t sync_rounds = 0;
    std::uint64_t cross_messages = 0;
    std::uint64_t events_executed = 0;
    double modeled_overhead_seconds = 0.0;  // wall time spent in the model
    /// Wall-clock seconds summed over all partitions spent waiting at the
    /// window barrier (always accounted; the scaling bench reports
    /// sync_wait_seconds / (num_partitions * wall) as the sync fraction).
    double sync_wait_seconds = 0.0;
  };

  explicit ParallelEngine(Config config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Accessor for partition `i` (valid for the engine's lifetime).
  Partition& partition(std::uint32_t i) { return *partitions_[i]; }

  /// Number of partitions.
  std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(partitions_.size());
  }

  /// The conservative lookahead this engine was configured with (the
  /// global minimum / per-pair default).
  SimTime lookahead() const { return config_.lookahead; }

  /// The lookahead of the ordered pair (from, to).
  SimTime pair_lookahead(std::uint32_t from, std::uint32_t to) const;

  /// Declares the minimum delay of any from->to interaction. Builders call
  /// this with the minimum propagation delay over the pair's actual links,
  /// which is >= the configured global lookahead; larger values widen the
  /// pair's windows under WindowMode::per_pair. Use `infinite_lookahead()`
  /// for pairs with no links at all (the pair then never constrains a
  /// window, and any send on it throws). Must not be called during
  /// run_until. Values below the configured global lookahead throw.
  void set_pair_lookahead(std::uint32_t from, std::uint32_t to, SimTime min_delay);

  /// Sentinel accepted by set_pair_lookahead for unconnected pairs.
  static constexpr SimTime infinite_lookahead() { return SimTime::max(); }

  /// Sends `fn` for execution in partition `to` at virtual time
  /// `deliver_at`. Must satisfy deliver_at >= sender's now + the pair's
  /// lookahead; violations throw (they would break conservative
  /// causality).
  void send_cross(std::uint32_t from, std::uint32_t to, SimTime deliver_at,
                  EventFn fn) {
    send_cross(from, to, deliver_at, 0, std::move(fn));
  }

  /// As above, carrying an FES same-time priority key into the target
  /// partition's event queue (packet id for link deliveries).
  void send_cross(std::uint32_t from, std::uint32_t to, SimTime deliver_at,
                  std::uint64_t key, EventFn fn);

  /// Runs all partitions to virtual time `end` using worker threads.
  /// Blocking; may be called repeatedly to extend a run.
  void run_until(SimTime end);

  /// Statistics accumulated across run_until calls.
  const Stats& stats() const { return stats_; }

  /// Installs a metrics registry (or nullptr to disable). Publishes the
  /// engine aggregates (`pdes.sync_rounds`, `.cross_messages`,
  /// `.events_executed`, `.modeled_overhead_us`, `.overflow_posts`) via a
  /// snapshot flusher, a log2 histogram of per-partition virtual-time
  /// advance per window (`pdes.window_advance_ns`), per-pair cross-message
  /// counters (`pdes.pair.p<from>_p<to>.messages`, created lazily on first
  /// traffic), and per-partition engine metrics under `pdes.p<i>.*` (event
  /// accounting, ring high-water, messages drained, overflow spills, wall
  /// nanoseconds spent waiting at the window barrier). While a telemetry
  /// TraceSession is active it also emits one `pdes.window` span per
  /// partition per sync round plus a `pdes.sync_round` instant per round.
  /// Call before building components in the partitions.
  void set_telemetry(telemetry::Registry* registry);

  /// The installed registry, or nullptr.
  telemetry::Registry* telemetry() const { return telemetry_; }

 private:
  void spin_overhead(double microseconds);
  telemetry::Counter* pair_counter(std::uint32_t from, std::uint32_t to);
  /// Rebuilds pair_reach_ns_ (the shortest-path closure of the pair
  /// lookahead graph) after set_pair_lookahead edits. Floyd–Warshall over
  /// at most 64x64 entries; runs once per run_until when dirty.
  void recompute_pair_reach();

  Config config_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::atomic<std::uint64_t>> send_seq_;
  /// Row-major [from * P + to] minimum delay in ns; SimTime::max().ns()
  /// means "no such channel".
  std::vector<std::int64_t> pair_lookahead_ns_;
  /// Shortest-path closure of pair_lookahead_ns_ (paths of >= 1 hop, so
  /// the diagonal holds the shortest cycle, not 0). Drives per-pair
  /// windows; see the file comment.
  std::vector<std::int64_t> pair_reach_ns_;
  bool pair_reach_dirty_ = true;
  std::atomic<std::uint64_t> round_messages_{0};
  Stats stats_;
  std::atomic<std::uint64_t> sync_wait_ns_total_{0};
  telemetry::Registry* telemetry_ = nullptr;
  std::vector<telemetry::Counter*> sync_wait_ns_;  ///< per partition
  telemetry::Histogram* window_advance_ = nullptr;
  /// Lazily created per-pair counters, row-major like pair_lookahead_ns_.
  std::vector<std::atomic<telemetry::Counter*>> pair_messages_;
};

}  // namespace esim::sim
