#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

#include "sim/component.h"
#include "telemetry/metrics.h"

namespace esim::sim {

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

Simulator::~Simulator() = default;

EventHandle Simulator::schedule_at(SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::logic_error("schedule_at: time " + t.to_string() +
                           " is in the past (now=" + now_.to_string() + ")");
  }
  return queue_.schedule(t, std::move(fn));
}

EventHandle Simulator::schedule_at_keyed(SimTime t, std::uint64_t key,
                                         EventFn fn) {
  if (t < now_) {
    throw std::logic_error("schedule_at_keyed: time " + t.to_string() +
                           " is in the past (now=" + now_.to_string() + ")");
  }
  return queue_.schedule(t, key, std::move(fn));
}

EventHandle Simulator::schedule_in(SimTime d, EventFn fn) {
  if (d < SimTime{}) {
    throw std::logic_error("schedule_in: negative delay " + d.to_string());
  }
  return queue_.schedule(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventHandle h) { return queue_.cancel(h); }

bool Simulator::step() {
  auto ev = queue_.pop();
  if (!ev) return false;
  assert(ev->time >= now_);
  now_ = ev->time;
  ++events_executed_;
  if (pop_observer_ != nullptr) pop_observer_->on_event_pop(ev->time, ev->seq);
  ev->fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() >= end) {
      now_ = end;
      return;
    }
    step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::fast_forward_to(SimTime t) {
  if (t < now_) {
    throw std::logic_error("fast_forward_to: time " + t.to_string() +
                           " is in the past (now=" + now_.to_string() + ")");
  }
  if (!queue_.empty() && queue_.next_time() < t) {
    throw std::logic_error(
        "fast_forward_to: a pending event at " +
        queue_.next_time().to_string() + " precedes the target " +
        t.to_string() + " — the skipped interval is not empty");
  }
  now_ = t;
}

void Simulator::set_telemetry(telemetry::Registry* registry,
                              const std::string& prefix) {
  telemetry_ = registry;
  if (registry == nullptr) return;
  auto* executed = registry->counter(prefix + ".events_executed");
  auto* scheduled = registry->counter(prefix + ".events_scheduled");
  auto* pending = registry->gauge(prefix + ".events_pending");
  auto* heap = registry->gauge(prefix + ".fes_heap_entries");
  registry->add_flusher([this, executed, scheduled, pending, heap] {
    executed->set(events_executed_);
    scheduled->set(queue_.total_scheduled());
    pending->set(static_cast<std::int64_t>(queue_.size()));
    heap->set(static_cast<std::int64_t>(queue_.heap_entries()));
  });
}

Component* Simulator::find_component(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void Simulator::register_component(std::unique_ptr<Component> c) {
  by_name_.try_emplace(c->name(), c.get());
  components_.push_back(std::move(c));
}

}  // namespace esim::sim
