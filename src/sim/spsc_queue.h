// Bounded lock-free single-producer / single-consumer ring.
//
// The PDES engine routes cross-partition messages through one of these per
// (source, destination) partition pair: the source's worker thread is the
// only producer and the destination's worker thread is the only consumer,
// so a wait-free ring replaces the mutex-guarded inbox that used to
// serialize every post. Indices are monotonically increasing uint64s
// (masked on access), so full/empty never alias and ABA cannot occur.
//
// Memory-ordering contract:
//   * try_push publishes the element with a release store of tail_; the
//     consumer's acquire load of tail_ makes the element visible.
//   * try_pop releases head_ after destroying/moving the element; the
//     producer's acquire load of head_ guarantees the slot is free before
//     it is reused.
//   * Each side keeps a cached copy of the other side's index and re-reads
//     the shared atomic only when the cache says the ring looks full/empty,
//     so the steady state costs one relaxed store + one cached compare per
//     operation and no cache-line ping-pong.
//
// A full ring makes try_push return false (bounded backpressure); the
// caller decides how to spill (sim::Partition falls back to a mutexed
// overflow list so no message is ever dropped or reordered).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace esim::sim {

// Fixed rather than std::hardware_destructive_interference_size: the value
// must not vary across translation units / tuning flags (ABI), and 64 is
// right for every x86-64 and the common aarch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  /// Creates a ring holding up to `capacity` elements. Capacity is rounded
  /// up to a power of two (index masking) and is at least 2.
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::allocator<Slot>{}.allocate(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    // Drain anything left (single-threaded by the time we destruct).
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = head; i != tail; ++i) {
      slot(i)->destroy();
    }
    std::allocator<Slot>{}.deallocate(slots_, mask_ + 1);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (and leaves `v` intact) when the ring is
  /// full. Wait-free: one cached compare, one placement move, one release
  /// store.
  bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {  // looks full: refresh the cache
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slot(tail)->construct(std::move(v));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {  // looks empty: refresh the cache
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    Slot* s = slot(head);
    out = std::move(*s->get());
    s->destroy();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent,
  /// e.g. at a PDES window barrier).
  std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_relaxed));
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    T* get() { return std::launder(reinterpret_cast<T*>(storage)); }
    void construct(T&& v) { ::new (static_cast<void*>(storage)) T(std::move(v)); }
    void destroy() { get()->~T(); }
  };

  Slot* slot(std::uint64_t i) { return &slots_[i & mask_]; }

  std::size_t mask_ = 0;
  Slot* slots_ = nullptr;

  // Producer-owned line: tail index plus the producer's cached head.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;

  // Consumer-owned line: head index plus the consumer's cached tail.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace esim::sim
