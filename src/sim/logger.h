// Minimal leveled logger for simulation diagnostics.
//
// Logging is off by default (level Warn) so benchmark runs pay only a level
// check per call site. Messages are emitted with the current simulation
// time, which the Simulator injects.
//
// Thread safety: ParallelEngine partitions each own a Logger but share the
// process's stderr (and tests sometimes share one sink closure across
// partitions), so *emission* — formatting handed to the sink, or the
// stderr write — is serialized under one process-wide mutex. Level checks
// stay unsynchronized loads: configure levels before starting a parallel
// run.
//
// Use the ESIM_LOG macro at call sites so the message expression (string
// concatenation, to_string, ...) is never evaluated when the level is
// disabled:
//
//   ESIM_LOG(*this, sim::LogLevel::Debug,
//            "no route for " + pkt.to_string());   // not built when off
#pragma once

#include <functional>
#include <string>

#include "sim/time.h"

namespace esim::sim {

/// Verbosity levels, most to least severe.
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/// Converts a level to its display tag, e.g. "INFO".
const char* log_level_name(LogLevel level);

/// Simple leveled logger writing to stderr (or a user-supplied sink).
class Logger {
 public:
  Logger() = default;

  /// Sets the maximum level that will be emitted.
  void set_level(LogLevel level) { level_ = level; }
  /// Current maximum emitted level.
  LogLevel level() const { return level_; }

  /// True if a message at `level` would be emitted (guard for expensive
  /// formatting at call sites; ESIM_LOG checks this for you).
  bool enabled(LogLevel level) const { return level <= level_; }

  /// Redirects output; the sink receives fully formatted lines, one call
  /// at a time (emission is serialized process-wide, so a sink shared by
  /// several Loggers needs no locking of its own). Passing an empty
  /// function restores the default stderr sink.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

  /// Emits one message tagged with the simulation time and source name.
  void log(LogLevel level, SimTime now, const std::string& source,
           const std::string& message);

 private:
  LogLevel level_ = LogLevel::Warn;
  std::function<void(const std::string&)> sink_;
};

}  // namespace esim::sim

/// Logs through any target exposing log_enabled(level) and log(level, msg)
/// (sim::Component does). The message expression is evaluated only when
/// the level is enabled, so disabled-level calls allocate nothing.
#define ESIM_LOG(target, level, message_expr)          \
  do {                                                 \
    if ((target).log_enabled(level)) {                 \
      (target).log((level), (message_expr));           \
    }                                                  \
  } while (0)
