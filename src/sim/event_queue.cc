#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace esim::sim {

std::uint32_t EventQueue::acquire_slot(EventFn fn) {
  std::uint32_t slot;
  if (free_head_ != kNpos) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
    slots_[slot].fn = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{std::move(fn), /*seq=*/0, /*gen=*/1, kNpos});
  }
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();  // free the closure now, not when the heap entry surfaces
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventHandle EventQueue::schedule(SimTime t, std::uint64_t key, EventFn fn) {
  const std::uint32_t slot = acquire_slot(std::move(fn));
  const std::uint32_t gen = slots_[slot].gen;
  slots_[slot].seq = next_seq_;
  heap_.push_back(Entry{t, key, next_seq_++, slot, gen});
  sift_up(heap_.size() - 1);
  ++live_;
  ++total_scheduled_;
  return EventHandle{handle_id(slot, gen)};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(h.id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(h.id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  release_slot(slot);
  --live_;
  ++dead_in_heap_;
  // Eager top-pruning: TCP timers dominate cancellations and sit near the
  // root, so clearing them now keeps next_time()/pop() prune-free.
  prune_top();
  maybe_compact();
  return true;
}

SimTime EventQueue::next_time() {
  prune_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::optional<Event> EventQueue::pop() {
  prune_top();
  if (heap_.empty()) return std::nullopt;
  const Entry e = heap_.front();
  Event out{e.time, handle_id(e.slot, e.gen), e.seq,
            std::move(slots_[e.slot].fn)};
  release_slot(e.slot);
  --live_;
  remove_top();
  return out;
}

namespace {

// SplitMix64 finalizer — local copy so sim stays dependency-free of
// src/check (which owns the digest Hash64 built on the same mixer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t EventQueue::pending_fingerprint() const {
  // Commutative: sum of per-event mixes, so heap layout and visit order
  // cannot leak into the fingerprint.
  std::uint64_t acc = 0;
  for (const Entry& e : heap_) {
    if (entry_dead(e)) continue;
    acc += mix64(mix64(static_cast<std::uint64_t>(e.time.ns())) ^
                 mix64(e.key ^ 0x517CC1B727220A95ULL));
  }
  return acc;
}

void EventQueue::restore_accounting(const AccountingSnapshot& snap) {
  if (live_ != snap.live) {
    throw std::logic_error(
        "restore_accounting: live pending count differs from snapshot");
  }
  if (pending_fingerprint() != snap.pending) {
    throw std::logic_error(
        "restore_accounting: pending (time, key) multiset differs from "
        "snapshot");
  }
  for (const Entry& e : heap_) {
    if (!entry_dead(e) && e.seq >= snap.next_seq) {
      throw std::logic_error(
          "restore_accounting: a live event was scheduled after the "
          "snapshot — rewinding next_seq would duplicate its sequence");
    }
  }
  next_seq_ = snap.next_seq;
  total_scheduled_ = snap.total_scheduled;
}

void EventQueue::debug_set_invert_tiebreak(bool on) {
  if (total_scheduled_ != 0) {
    throw std::logic_error(
        "debug_set_invert_tiebreak: must be called before any event is "
        "scheduled (the heap is ordered under the old comparator)");
  }
  debug_invert_tiebreak_ = on;
}

void EventQueue::clear() {
  // Every live slot has exactly one matching heap entry; release those so
  // stale handles from before the clear can never match a reused slot.
  for (const Entry& e : heap_) {
    if (!entry_dead(e)) release_slot(e.slot);
  }
  heap_.clear();
  live_ = 0;
  dead_in_heap_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) return;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t smallest = i;
    for (std::size_t c = first; c < last; ++c) {
      if (later(heap_[smallest], heap_[c])) smallest = c;
    }
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void EventQueue::remove_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::prune_top() {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    remove_top();
    --dead_in_heap_;
  }
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMin || dead_in_heap_ * 2 <= heap_.size()) return;
  // Drop dead entries in place, then re-heapify bottom-up. O(n), amortized
  // against the cancellations that created the garbage; bounds the heap at
  // 2x the live count so churny workloads can't grow it without bound.
  auto keep = heap_.begin();
  for (const Entry& e : heap_) {
    if (!entry_dead(e)) *keep++ = e;
  }
  heap_.erase(keep, heap_.end());
  dead_in_heap_ = 0;
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

}  // namespace esim::sim
