#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace esim::sim {

EventHandle EventQueue::schedule(SimTime t, std::function<void()> fn) {
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{t, id, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  pending_.insert(id);
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return pending_.erase(h.id) > 0;
}

SimTime EventQueue::next_time() {
  prune_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::optional<Event> EventQueue::pop() {
  prune_top();
  if (heap_.empty()) return std::nullopt;
  Entry e = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  pending_.erase(e.id);
  return Event{e.time, e.id, std::move(e.fn)};
}

void EventQueue::clear() {
  heap_.clear();
  pending_.clear();
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t smallest = i;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void EventQueue::prune_top() {
  while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

}  // namespace esim::sim
