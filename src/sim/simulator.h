// The sequential discrete-event simulation engine.
//
// A `Simulator` owns the future-event set, the virtual clock, the root RNG,
// and a registry of named components. It is the single-threaded engine used
// by full-fidelity simulations and by each partition of the parallel engine
// (see parallel.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/logger.h"
#include "sim/random.h"
#include "sim/time.h"

namespace esim::telemetry {
class Registry;
}

namespace esim::sim {

class Component;

/// Observer of the engine's event pop stream. Installed by the
/// differential-determinism harness (src/check) to fingerprint execution
/// order; costs one branch per event when absent (the telemetry pattern).
class PopObserver {
 public:
  virtual ~PopObserver() = default;

  /// Called once per executed event, before its closure runs. `time` is
  /// the event's virtual time (== now() at execution), `seq` the FES
  /// insertion sequence that broke any same-time tie.
  virtual void on_event_pop(SimTime time, std::uint64_t seq) = 0;
};

/// Discrete-event simulation engine: virtual clock + future-event set.
///
/// Typical use:
///
///   Simulator sim{/*seed=*/42};
///   auto* host = sim.add_component<Host>(...);
///   sim.schedule_in(SimTime::from_ms(1), [&]{ ... });
///   sim.run_until(SimTime::from_sec(5));
class Simulator {
 public:
  /// Constructs an engine whose root RNG is seeded with `seed`.
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  EventHandle schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` at `t` with an engine-invariant same-time priority key
  /// (smaller first; key 0 — every plain schedule — precedes all keyed
  /// events). Links key packet deliveries by packet id so same-instant
  /// arrivals at a switch order identically under every engine; see
  /// event_queue.h.
  EventHandle schedule_at_keyed(SimTime t, std::uint64_t key, EventFn fn);

  /// Schedules `fn` after a delay of `d` (must be >= 0).
  EventHandle schedule_in(SimTime d, EventFn fn);

  /// Cancels a pending event. Returns false if already fired or cancelled.
  bool cancel(EventHandle h);

  /// Runs until the event set is exhausted or stop() is called.
  void run();

  /// Runs until virtual time reaches `end` (events at exactly `end` are NOT
  /// executed), the event set empties, or stop() is called. The clock is
  /// left at min(end, time of last executed event-set state).
  void run_until(SimTime end);

  /// Executes at most one event. Returns false when none remain.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events ever scheduled (executed + pending + cancelled).
  std::uint64_t events_scheduled() const { return queue_.total_scheduled(); }

  /// Number of pending events.
  std::size_t events_pending() const { return queue_.size(); }

  /// Time of the earliest pending event. Requires events_pending() > 0.
  SimTime next_event_time() { return queue_.next_time(); }

  /// Root RNG. Components should `fork()` their own stream from this at
  /// construction so later additions don't shift earlier streams.
  Rng& rng() { return rng_; }

  /// Diagnostics logger shared by all components.
  Logger& logger() { return logger_; }

  /// Installs a metrics registry (telemetry on) or nullptr (off, the
  /// default). Registers a pull-flusher publishing this engine's event
  /// accounting under `<prefix>.events_executed`, `.events_scheduled`,
  /// `.events_pending`, and `.fes_heap_entries`. Install *before*
  /// building components: they capture instrument pointers at
  /// construction. The registry must outlive every snapshot taken while
  /// this simulator is alive.
  void set_telemetry(telemetry::Registry* registry,
                     const std::string& prefix = "sim");

  /// The installed registry, or nullptr. Components check this once at
  /// construction, never on the hot path.
  telemetry::Registry* telemetry() const { return telemetry_; }

  /// Installs an event-pop observer (or nullptr to remove it). The
  /// observer sees every executed event's (time, tie-break seq) before the
  /// closure runs. Zero cost when absent: step() pays one null check, the
  /// same contract as telemetry. The observer must outlive the run.
  void set_pop_observer(PopObserver* observer) { pop_observer_ = observer; }

  /// The installed pop observer, or nullptr.
  PopObserver* pop_observer() const { return pop_observer_; }

  // --- memoization / fast-forward hooks (src/memo) ---------------------

  /// Jumps the virtual clock to `t` without executing anything. Sound only
  /// when the interval [now, t) is known to be empty of pending events —
  /// i.e. a memoized phase replay has already accounted for them. Throws
  /// std::logic_error if `t` < now() or a pending event precedes `t`.
  void fast_forward_to(SimTime t);

  /// Declares `n` logical event executions (a replayed phase) without
  /// running them, keeping events_executed() identical to a live run.
  void advance_executed_accounting(std::uint64_t n) { events_executed_ += n; }

  /// FES accounting capture/rewind/advance — see EventQueue's
  /// snapshot/restore contract in event_queue.h.
  EventQueue::AccountingSnapshot fes_snapshot() const {
    return queue_.snapshot_accounting();
  }
  void fes_restore(const EventQueue::AccountingSnapshot& snap) {
    queue_.restore_accounting(snap);
  }
  void fes_advance(std::uint64_t scheduled_delta) {
    queue_.advance_accounting(scheduled_delta);
  }

  /// The FES insertion sequence the next schedule will consume.
  std::uint64_t fes_next_seq() const { return queue_.next_seq(); }

  /// True while `h` refers to a pending (not executed/cancelled) event.
  bool event_live(EventHandle h) const { return queue_.live(h); }

  /// Insertion sequence of a live event; 0 when dead.
  std::uint64_t event_seq_of(EventHandle h) const { return queue_.seq_of(h); }

  /// Visits every live pending event as f(time, key), unspecified order.
  template <typename F>
  void for_each_pending(F&& f) const {
    queue_.for_each_pending(std::forward<F>(f));
  }

  /// TEST-ONLY: forwards to EventQueue::debug_set_invert_tiebreak — the
  /// determinism harness's injected ordering bug. Throws if any event has
  /// already been scheduled on this engine.
  void debug_invert_fes_tiebreak(bool on) {
    queue_.debug_set_invert_tiebreak(on);
  }

  /// Constructs a component in place, registers it under its name, and
  /// returns a non-owning pointer. The simulator owns the component.
  template <typename T, typename... Args>
  T* add_component(Args&&... args) {
    auto owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T* raw = owned.get();
    register_component(std::move(owned));
    return raw;
  }

  /// Looks up a component by registered name; nullptr if absent.
  Component* find_component(const std::string& name) const;

  /// All registered components, in registration order.
  const std::vector<std::unique_ptr<Component>>& components() const {
    return components_;
  }

 private:
  void register_component(std::unique_ptr<Component> c);

  SimTime now_;
  EventQueue queue_;
  Rng rng_;
  Logger logger_;
  telemetry::Registry* telemetry_ = nullptr;
  PopObserver* pop_observer_ = nullptr;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::vector<std::unique_ptr<Component>> components_;
  std::unordered_map<std::string, Component*> by_name_;
};

}  // namespace esim::sim
