// EventFn: the callable payload of a scheduled event.
//
// The hot path of the simulator executes tens of millions of small closures
// (a Link finishing a transmit, a Switch forwarding, a TCP timer firing).
// `std::function<void()>` pays a heap allocation for most of these because
// its small-buffer window (typically 16 bytes on libstdc++) is smaller than
// a captured Packet. EventFn is a move-only type-erased callable with an
// inline buffer sized for the captures this codebase actually schedules:
// `this` + a Packet (the Link/Switch delivery closures) fits with room to
// spare, so the common case allocates nothing. Larger or throwing-move
// callables transparently fall back to a heap box.
//
// Move-only on purpose: scheduled closures are executed exactly once and
// never copied, and accepting move-only captures lets call sites move
// Packets instead of copying them.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace esim::sim {

class EventFn {
 public:
  /// Inline capture budget. `this` + Packet (~80 bytes) must fit: every
  /// per-packet closure in src/net stays on the no-allocation path.
  static constexpr std::size_t kInlineSize = 88;

  EventFn() noexcept = default;

  /// Wraps any `void()` callable. Small nothrow-movable callables are
  /// stored inline; the rest go to the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &boxed_ops<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// Invokes the wrapped callable. Requires a non-empty EventFn.
  void operator()() { ops_->invoke(storage_); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Drops the wrapped callable (if any), leaving the EventFn empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the payload from `src` into `dst` and tears down
    /// `src`. For boxed payloads this is a pointer copy.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* self) { (*std::launder(static_cast<D*>(self)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* self) noexcept { std::launder(static_cast<D*>(self))->~D(); },
  };

  template <typename D>
  static constexpr Ops boxed_ops{
      [](void* self) { (**std::launder(static_cast<D**>(self)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(static_cast<D**>(self)); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineSize];
};

}  // namespace esim::sim
