#include "sim/logger.h"

#include <cstdio>

namespace esim::sim {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Trace:
      return "TRACE";
  }
  return "?";
}

void Logger::log(LogLevel level, SimTime now, const std::string& source,
                 const std::string& message) {
  if (!enabled(level)) return;
  std::string line = "[" + now.to_string() + "] " + log_level_name(level) +
                     " " + source + ": " + message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace esim::sim
