#include "sim/logger.h"

#include <cstdio>
#include <mutex>

namespace esim::sim {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Trace:
      return "TRACE";
  }
  return "?";
}

namespace {

// One process-wide emission lock: PDES partitions own separate Loggers but
// interleave on stderr (and tests share sink closures across partitions).
std::mutex& emit_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void Logger::log(LogLevel level, SimTime now, const std::string& source,
                 const std::string& message) {
  if (!enabled(level)) return;
  std::string line = "[" + now.to_string() + "] " + log_level_name(level) +
                     " " + source + ": " + message;
  std::lock_guard lock{emit_mutex()};
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace esim::sim
