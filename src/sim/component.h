// Base class for simulation components (hosts, switches, links, models).
//
// A component is a named object owned by a Simulator. It provides sugar for
// scheduling relative to the owning engine and for leveled logging tagged
// with the component's name.
#pragma once

#include <string>
#include <utility>

#include "sim/simulator.h"

namespace esim::sim {

/// Named simulation object owned by a Simulator.
class Component {
 public:
  /// Creates a component registered under `name` (names should be unique;
  /// duplicates are allowed but only the first is findable by name).
  Component(Simulator& sim, std::string name)
      : sim_{sim}, name_{std::move(name)}, rng_{sim.rng().fork()} {}

  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// The registered name, e.g. "cluster0.tor1".
  const std::string& name() const { return name_; }

  /// Owning engine.
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// Current virtual time (sugar for sim().now()).
  SimTime now() const { return sim_.now(); }

  /// Component-private RNG stream, forked from the simulator's root stream
  /// at construction so component draws are order-independent.
  Rng& rng() { return rng_; }

  /// True if a message at `level` would be emitted (the ESIM_LOG guard).
  bool log_enabled(LogLevel level) const {
    return sim_.logger().enabled(level);
  }

  /// Emits a log message tagged with this component's name. Prefer
  /// ESIM_LOG(*this, level, expr) so the message is only built when
  /// enabled.
  void log(LogLevel level, const std::string& message) {
    sim_.logger().log(level, now(), name_, message);
  }

 protected:
  /// Schedules a member action after `delay`.
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    return sim_.schedule_in(delay, std::move(fn));
  }

  /// Schedules a member action at absolute time `t`.
  EventHandle schedule_at(SimTime t, EventFn fn) {
    return sim_.schedule_at(t, std::move(fn));
  }

 private:
  Simulator& sim_;
  std::string name_;
  Rng rng_;
};

}  // namespace esim::sim
