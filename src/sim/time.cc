#include "sim/time.h"

#include <cstdio>

namespace esim::sim {

std::string SimTime::to_string() const {
  char buf[48];
  const double ns = static_cast<double>(ns_);
  if (ns_ == 0) return "0s";
  if (ns < 1e3 && ns > -1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  } else if (ns < 1e6 && ns > -1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns / 1e3);
  } else if (ns < 1e9 && ns > -1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.6fs", ns / 1e9);
  }
  return buf;
}

}  // namespace esim::sim
